package subject

import (
	"math/rand"
	"strings"
	"testing"

	"casyn/internal/bnet"
	"casyn/internal/logic"
)

func TestStructuralHashing(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	n1 := d.AddNand2(a, b)
	n2 := d.AddNand2(b, a) // commuted
	if n1 != n2 {
		t.Error("NAND2 hashing must be commutative")
	}
	i1 := d.AddInv(n1)
	i2 := d.AddInv(n1)
	if i1 != i2 {
		t.Error("INV hashing must deduplicate")
	}
}

func TestInvCancellation(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	if d.AddInv(d.AddInv(a)) != a {
		t.Error("INV(INV(a)) must be a")
	}
}

func TestConstantFolding(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	c0 := d.Const(false)
	c1 := d.Const(true)
	if d.Const(false) != c0 || d.Const(true) != c1 {
		t.Error("constants must be unique")
	}
	if d.AddNand2(a, c0) != c1 {
		t.Error("NAND(a,0) must be 1")
	}
	if d.AddNand2(a, c1) != d.AddInv(a) {
		t.Error("NAND(a,1) must be INV(a)")
	}
	if d.AddInv(c0) != c1 || d.AddInv(c1) != c0 {
		t.Error("INV of constants must fold")
	}
	if d.AddNand2(a, a) != d.AddInv(a) {
		t.Error("NAND(a,a) must be INV(a)")
	}
}

func TestAndOrHelpers(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	and := d.AddAnd2(a, b)
	or := d.AddOr2(a, b)
	d.AddOutput("and", and)
	d.AddOutput("or", or)
	cases := []struct {
		in      []bool
		wantAnd bool
		wantOr  bool
	}{
		{[]bool{false, false}, false, false},
		{[]bool{true, false}, false, true},
		{[]bool{false, true}, false, true},
		{[]bool{true, true}, true, true},
	}
	for _, c := range cases {
		out, err := d.EvalOutputs(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != c.wantAnd || out[1] != c.wantOr {
			t.Errorf("in=%v: and=%v or=%v", c.in, out[0], out[1])
		}
	}
}

func TestFanoutsAndMultiFanout(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	n := d.AddNand2(a, b)
	i := d.AddInv(n)
	n2 := d.AddNand2(n, i)
	d.AddOutput("o", n2)
	fo := d.Fanouts(n)
	if len(fo) != 2 {
		t.Errorf("Fanouts(n) = %v, want 2 entries", fo)
	}
	if !d.IsMultiFanout(n) {
		t.Error("n must be multi-fanout")
	}
	if d.IsMultiFanout(i) {
		t.Error("i must be single-fanout")
	}
	// A gate that feeds one gate and one PO is multi-fanout.
	d2 := New()
	x := d2.AddPI("x")
	y := d2.AddPI("y")
	g := d2.AddNand2(x, y)
	h := d2.AddInv(g)
	d2.AddOutput("g", g)
	d2.AddOutput("h", h)
	if !d2.IsMultiFanout(g) {
		t.Error("gate feeding a PO and a gate must be multi-fanout")
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	x := d.AddNand2(a, b)
	y := d.AddInv(x)
	z := d.AddNand2(y, a)
	d.AddOutput("z", z)
	pos := map[int]int{}
	for i, id := range d.TopoOrder() {
		pos[id] = i
	}
	for id := 0; id < d.NumGates(); id++ {
		for _, fi := range d.Fanins(id) {
			if pos[fi] > pos[id] {
				t.Fatalf("gate %d before its fanin %d", id, fi)
			}
		}
	}
}

func TestLiveGates(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	used := d.AddNand2(a, b)
	_ = d.AddInv(used) // orphan
	d.AddOutput("o", used)
	live := d.LiveGates()
	want := map[int]bool{a: true, b: true, used: true}
	if len(live) != len(want) {
		t.Fatalf("LiveGates = %v", live)
	}
	for _, id := range live {
		if !want[id] {
			t.Errorf("unexpected live gate %d", id)
		}
	}
}

func TestStats(t *testing.T) {
	t.Parallel()
	d := New()
	a := d.AddPI("a")
	b := d.AddPI("b")
	n := d.AddNand2(a, b)
	i := d.AddInv(n)
	d.Const(false)
	d.AddOutput("o", i)
	s := d.Stats()
	if s.PIs != 2 || s.Nand2s != 1 || s.Invs != 1 || s.Consts != 1 || s.Outputs != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if d.BaseGateCount() != 2 {
		t.Errorf("BaseGateCount = %d, want 2", d.BaseGateCount())
	}
}

func TestGateTypeString(t *testing.T) {
	t.Parallel()
	for gt, want := range map[GateType]string{PI: "pi", Nand2: "nand2", Inv: "inv", Const0: "const0", Const1: "const1"} {
		if gt.String() != want {
			t.Errorf("%d.String() = %q, want %q", gt, gt.String(), want)
		}
	}
	if Nand2.NumInputs() != 2 || Inv.NumInputs() != 1 || PI.NumInputs() != 0 {
		t.Error("NumInputs wrong")
	}
}

// decomposeSample builds a network from a PLA string and decomposes it.
func decomposeSample(t *testing.T, src string) (*bnet.Network, *DAG) {
	t.Helper()
	p, err := logic.ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := bnet.FromPLA(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, d
}

func TestDecomposeEquivalence(t *testing.T) {
	t.Parallel()
	src := ".i 4\n.o 2\n1-0- 10\n-11- 11\n0--1 01\n1111 10\n.e\n"
	n, d := decomposeSample(t, src)
	assign := make([]bool, 4)
	for m := 0; m < 16; m++ {
		for i := range assign {
			assign[i] = m>>i&1 == 1
		}
		want, err := n.EvalOutputs(assign)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.EvalOutputs(assign)
		if err != nil {
			t.Fatal(err)
		}
		for o := range want {
			if want[o] != got[o] {
				t.Errorf("minterm %d output %d: net=%v dag=%v", m, o, want[o], got[o])
			}
		}
	}
}

func TestDecomposeConstants(t *testing.T) {
	t.Parallel()
	// An output with no terms is constant 0.
	n := bnet.New()
	n.AddPI("a")
	f := n.AddInternal("f", nil)
	n.AddPO("zero", f, false)
	n.AddPO("one", f, true)
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.EvalOutputs([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != true {
		t.Errorf("constant outputs = %v", out)
	}
}

func TestDecomposeRandomEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		ni := rng.Intn(6) + 3
		no := rng.Intn(3) + 1
		p := logic.NewPLA(ni, no)
		for k := rng.Intn(15) + 3; k > 0; k-- {
			cb := logic.NewCube(ni)
			for i := 0; i < ni; i++ {
				switch rng.Intn(3) {
				case 0:
					cb.SetPos(i)
				case 1:
					cb.SetNeg(i)
				}
			}
			row := make([]bool, no)
			row[rng.Intn(no)] = true
			if err := p.AddTerm(cb, row); err != nil {
				t.Fatal(err)
			}
		}
		n, err := bnet.FromPLA(p)
		if err != nil {
			t.Fatal(err)
		}
		// Optimize, then decompose; function must survive both.
		bnet.Extract(n, bnet.ExtractOptions{MaxIterations: 30})
		d, err := Decompose(n)
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]bool, ni)
		for v := 0; v < 200; v++ {
			for i := range assign {
				assign[i] = rng.Intn(2) == 0
			}
			want := p.Eval(assign)
			got, err := d.EvalOutputs(assign)
			if err != nil {
				t.Fatal(err)
			}
			for o := range want {
				if want[o] != got[o] {
					t.Fatalf("trial %d output %d differs", trial, o)
				}
			}
		}
	}
}

func TestDecomposeBalancedDepth(t *testing.T) {
	t.Parallel()
	// A 16-literal single-cube function must decompose with depth
	// O(log n), not a 15-deep chain.
	n := bnet.New()
	var lits []bnet.Lit
	for i := 0; i < 16; i++ {
		id := n.AddPI(string(rune('a' + i)))
		lits = append(lits, bnet.Lit{Node: id})
	}
	cube, ok := bnet.NewCube(lits...)
	if !ok {
		t.Fatal("cube build failed")
	}
	f := n.AddInternal("wide_and", bnet.NewSop(cube))
	n.AddPO("o16", f, false)
	d, err := Decompose(n)
	if err != nil {
		t.Fatal(err)
	}
	depth := make([]int, d.NumGates())
	maxDepth := 0
	for _, id := range d.TopoOrder() {
		for _, fi := range d.Fanins(id) {
			if depth[fi]+1 > depth[id] {
				depth[id] = depth[fi] + 1
			}
		}
		if depth[id] > maxDepth {
			maxDepth = depth[id]
		}
	}
	// Balanced AND tree of 16 leaves: 4 AND2 levels = 8 NAND/INV
	// levels; allow slack but far below a 15-gate chain (30 levels).
	if maxDepth > 12 {
		t.Errorf("decomposition depth %d, want balanced (<=12)", maxDepth)
	}
}

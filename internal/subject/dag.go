// Package subject implements the subject DAG: the technology-
// independent netlist of base functions (two-input NANDs and
// inverters) that technology mapping covers with library cells.
//
// The paper's flow decomposes the optimized Boolean network into this
// representation, places it on the chip layout image, and then maps
// it; the base-gate counts it reports (SPLA = 22,834, PDC = 23,058,
// TOO_LARGE = 27,977) are counts of these NAND2/INV vertices.
package subject

import (
	"fmt"
	"sort"
)

// GateType is the type of a subject-DAG vertex.
type GateType uint8

const (
	// PI is a primary input.
	PI GateType = iota
	// Nand2 is a two-input NAND base gate.
	Nand2
	// Inv is an inverter base gate.
	Inv
	// Const0 is the constant-false source.
	Const0
	// Const1 is the constant-true source.
	Const1
)

// String implements fmt.Stringer.
func (t GateType) String() string {
	switch t {
	case PI:
		return "pi"
	case Nand2:
		return "nand2"
	case Inv:
		return "inv"
	case Const0:
		return "const0"
	case Const1:
		return "const1"
	default:
		return fmt.Sprintf("gate(%d)", int(t))
	}
}

// NumInputs returns the fanin count of the gate type.
func (t GateType) NumInputs() int {
	switch t {
	case Nand2:
		return 2
	case Inv:
		return 1
	default:
		return 0
	}
}

// Gate is one vertex of the subject DAG.
type Gate struct {
	ID   int
	Type GateType
	// In holds the fanin gate IDs: In[0] for INV, In[0:2] for NAND2.
	In [2]int
	// Name is set for primary inputs.
	Name string
}

// Output is a named primary output of the DAG.
type Output struct {
	Name string
	Gate int
}

// DAG is a structurally hashed network of base gates.
type DAG struct {
	gates   []Gate
	pis     []int
	outputs []Output
	hash    map[[3]int]int
	fanouts [][]int // lazily built; nil means stale
	// replicaOf maps a replica gate to the original it was cloned
	// from (see replica.go). Non-empty means ascending IDs are no
	// longer a topological order.
	replicaOf map[int]int
}

// New returns an empty subject DAG.
func New() *DAG {
	return &DAG{hash: make(map[[3]int]int)}
}

// NumGates returns the total vertex count including PIs and constants.
func (d *DAG) NumGates() int { return len(d.gates) }

// Gate returns the gate with the given ID.
func (d *DAG) Gate(id int) *Gate { return &d.gates[id] }

// PIs returns the primary input gate IDs in creation order.
func (d *DAG) PIs() []int { return d.pis }

// Outputs returns the named outputs in creation order.
func (d *DAG) Outputs() []Output { return d.outputs }

// BaseGateCount returns the number of NAND2 and INV vertices — the
// "base gates" metric of the paper.
func (d *DAG) BaseGateCount() int {
	n := 0
	for i := range d.gates {
		if t := d.gates[i].Type; t == Nand2 || t == Inv {
			n++
		}
	}
	return n
}

// AddPI appends a primary input.
func (d *DAG) AddPI(name string) int {
	id := len(d.gates)
	d.gates = append(d.gates, Gate{ID: id, Type: PI, Name: name, In: [2]int{-1, -1}})
	d.pis = append(d.pis, id)
	d.fanouts = nil
	return id
}

// Const returns the constant gate for the given value, creating it on
// first use.
func (d *DAG) Const(v bool) int {
	t := Const0
	if v {
		t = Const1
	}
	key := [3]int{int(t), -1, -1}
	if id, ok := d.hash[key]; ok {
		return id
	}
	id := len(d.gates)
	d.gates = append(d.gates, Gate{ID: id, Type: t, In: [2]int{-1, -1}})
	d.hash[key] = id
	d.fanouts = nil
	return id
}

// AddInv returns the ID of INV(a), applying double-inverter
// cancellation and constant folding, reusing an existing gate when the
// same structure already exists.
func (d *DAG) AddInv(a int) int {
	switch g := d.gates[a]; g.Type {
	case Inv:
		return g.In[0] // INV(INV(x)) = x
	case Const0:
		return d.Const(true)
	case Const1:
		return d.Const(false)
	}
	key := [3]int{int(Inv), a, -1}
	if id, ok := d.hash[key]; ok {
		return id
	}
	id := len(d.gates)
	d.gates = append(d.gates, Gate{ID: id, Type: Inv, In: [2]int{a, -1}})
	d.hash[key] = id
	d.fanouts = nil
	return id
}

// AddNand2 returns the ID of NAND2(a, b) with constant folding, input
// canonicalization, and structural hashing.
func (d *DAG) AddNand2(a, b int) int {
	// Constant folding.
	ta, tb := d.gates[a].Type, d.gates[b].Type
	switch {
	case ta == Const0 || tb == Const0:
		return d.Const(true)
	case ta == Const1:
		return d.AddInv(b)
	case tb == Const1:
		return d.AddInv(a)
	case a == b:
		return d.AddInv(a)
	}
	if a > b {
		a, b = b, a
	}
	key := [3]int{int(Nand2), a, b}
	if id, ok := d.hash[key]; ok {
		return id
	}
	id := len(d.gates)
	d.gates = append(d.gates, Gate{ID: id, Type: Nand2, In: [2]int{a, b}})
	d.hash[key] = id
	d.fanouts = nil
	return id
}

// AddAnd2 builds AND2(a,b) = INV(NAND2(a,b)).
func (d *DAG) AddAnd2(a, b int) int { return d.AddInv(d.AddNand2(a, b)) }

// AddOr2 builds OR2(a,b) = NAND2(INV(a), INV(b)).
func (d *DAG) AddOr2(a, b int) int { return d.AddNand2(d.AddInv(a), d.AddInv(b)) }

// AddOutput marks gate as the named primary output.
func (d *DAG) AddOutput(name string, gate int) {
	d.outputs = append(d.outputs, Output{Name: name, Gate: gate})
}

// Fanins returns the fanin IDs of a gate (0, 1, or 2 entries).
func (d *DAG) Fanins(id int) []int {
	g := &d.gates[id]
	switch g.Type.NumInputs() {
	case 1:
		return g.In[:1]
	case 2:
		return g.In[:2]
	default:
		return nil
	}
}

// Fanouts returns the gates that read id's output. Output pins are not
// included; use OutputCount for net degree. The result is cached until
// the DAG is mutated.
func (d *DAG) Fanouts(id int) []int {
	if d.fanouts == nil {
		d.rebuildFanouts()
	}
	return d.fanouts[id]
}

// PrecomputeFanouts builds the fanout cache eagerly. Concurrent
// readers (the parallel K sweep and per-tree covering share one
// read-only DAG) must not race on the lazy rebuild inside Fanouts, so
// parallel sections call this once before fanning out.
func (d *DAG) PrecomputeFanouts() {
	if d.fanouts == nil {
		d.rebuildFanouts()
	}
}

func (d *DAG) rebuildFanouts() {
	d.fanouts = make([][]int, len(d.gates))
	for i := range d.gates {
		for _, fi := range d.Fanins(i) {
			d.fanouts[fi] = append(d.fanouts[fi], i)
		}
	}
}

// IsMultiFanout reports whether the gate drives more than one sink,
// counting primary-output pins.
func (d *DAG) IsMultiFanout(id int) bool {
	n := len(d.Fanouts(id))
	for _, o := range d.outputs {
		if o.Gate == id {
			n++
			if n > 1 {
				return true
			}
		}
	}
	return n > 1
}

// TopoOrder returns all gate IDs in topological order (fanins first).
// The DAG is acyclic by construction, so no error case exists.
func (d *DAG) TopoOrder() []int {
	if d.Replicated() {
		// Replica fanin rewires point sinks at larger IDs; fall back
		// to a genuine DFS topological order.
		return d.topoDFS()
	}
	// Gates are created fanins-first, so IDs are already topological.
	order := make([]int, len(d.gates))
	for i := range order {
		order[i] = i
	}
	return order
}

// Eval evaluates every gate under a PI assignment indexed by position
// in PIs().
func (d *DAG) Eval(piValues []bool) ([]bool, error) {
	if len(piValues) != len(d.pis) {
		return nil, fmt.Errorf("subject: %d PI values for %d PIs", len(piValues), len(d.pis))
	}
	val := make([]bool, len(d.gates))
	piIndex := make(map[int]int, len(d.pis))
	for i, id := range d.pis {
		piIndex[id] = i
	}
	for _, id := range d.TopoOrder() {
		g := &d.gates[id]
		switch g.Type {
		case PI:
			val[id] = piValues[piIndex[id]]
		case Const0:
			val[id] = false
		case Const1:
			val[id] = true
		case Inv:
			val[id] = !val[g.In[0]]
		case Nand2:
			val[id] = !(val[g.In[0]] && val[g.In[1]])
		}
	}
	return val, nil
}

// EvalOutputs evaluates the DAG and returns PO values in output order.
func (d *DAG) EvalOutputs(piValues []bool) ([]bool, error) {
	val, err := d.Eval(piValues)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(d.outputs))
	for i, o := range d.outputs {
		out[i] = val[o.Gate]
	}
	return out, nil
}

// LiveGates returns the IDs of gates reachable from any output,
// sorted ascending. Structural hashing can leave orphans when logic
// folds away; mapping and placement operate on the live set.
func (d *DAG) LiveGates() []int {
	live := make([]bool, len(d.gates))
	var stack []int
	for _, o := range d.outputs {
		stack = append(stack, o.Gate)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[id] {
			continue
		}
		live[id] = true
		stack = append(stack, d.Fanins(id)...)
	}
	var out []int
	for id, l := range live {
		if l {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Stats summarizes the DAG for reporting.
type Stats struct {
	PIs, Outputs, Nand2s, Invs, Consts int
}

// Stats returns gate-type counts over the whole DAG.
func (d *DAG) Stats() Stats {
	var s Stats
	s.PIs = len(d.pis)
	s.Outputs = len(d.outputs)
	for i := range d.gates {
		switch d.gates[i].Type {
		case Nand2:
			s.Nand2s++
		case Inv:
			s.Invs++
		case Const0, Const1:
			s.Consts++
		}
	}
	return s
}

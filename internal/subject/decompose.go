package subject

import (
	"fmt"

	"casyn/internal/bnet"
)

// Decompose lowers a Boolean network to a subject DAG of NAND2/INV
// base gates. Each node's SOP becomes a balanced tree of two-input
// ANDs feeding a balanced tree of two-input ORs, expressed in
// NAND2/INV form with structural hashing, double-inverter
// cancellation, and constant folding.
//
// Balanced (rather than skewed) trees keep the decomposition's logic
// depth logarithmic, matching what SIS's tech_decomp -a produces and
// keeping the mapped depth comparable across mapping styles.
func Decompose(n *bnet.Network) (*DAG, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	d := New()
	sig := make(map[bnet.NodeID]int, n.NumNodes())
	for _, id := range order {
		node := n.Node(id)
		switch node.Kind {
		case bnet.KindPI:
			sig[id] = d.AddPI(node.Name)
		case bnet.KindInternal:
			// A nil Fn is either a swept (unreferenced) node or a
			// constant-false function; building const0 is correct for
			// the latter and harmless for the former.
			g, err := buildSop(d, node.Fn, sig)
			if err != nil {
				return nil, fmt.Errorf("subject: node %q: %w", node.Name, err)
			}
			sig[id] = g
		case bnet.KindPO:
			if len(node.Fn) != 1 || len(node.Fn[0]) != 1 {
				return nil, fmt.Errorf("subject: PO %q has non-literal function", node.Name)
			}
			l := node.Fn[0][0]
			drv, ok := sig[l.Node]
			if !ok {
				return nil, fmt.Errorf("subject: PO %q driver not built", node.Name)
			}
			if l.Neg {
				drv = d.AddInv(drv)
			}
			d.AddOutput(node.Name, drv)
		}
	}
	return d, nil
}

// buildSop builds the gate tree for one SOP and returns its root.
func buildSop(d *DAG, fn bnet.Sop, sig map[bnet.NodeID]int) (int, error) {
	if len(fn) == 0 {
		return d.Const(false), nil
	}
	terms := make([]int, 0, len(fn))
	for _, cube := range fn {
		if len(cube) == 0 {
			return d.Const(true), nil
		}
		lits := make([]int, 0, len(cube))
		for _, l := range cube {
			g, ok := sig[l.Node]
			if !ok {
				return 0, fmt.Errorf("literal references unbuilt node %d", l.Node)
			}
			if l.Neg {
				g = d.AddInv(g)
			}
			lits = append(lits, g)
		}
		terms = append(terms, balancedTree(d, lits, d.AddAnd2))
	}
	return balancedTree(d, terms, d.AddOr2), nil
}

// balancedTree reduces the signals with op in a balanced binary tree.
func balancedTree(d *DAG, sigs []int, op func(a, b int) int) int {
	for len(sigs) > 1 {
		next := make([]int, 0, (len(sigs)+1)/2)
		for i := 0; i+1 < len(sigs); i += 2 {
			next = append(next, op(sigs[i], sigs[i+1]))
		}
		if len(sigs)%2 == 1 {
			next = append(next, sigs[len(sigs)-1])
		}
		sigs = next
	}
	return sigs[0]
}

package route

// Region partitioning for the parallel rip-up/reroute negotiation.
//
// Each negotiation round collects the segments whose current path
// crosses an over-capacity edge and recursively bisects them, by the
// gcell territory a reroute may touch, into spatially disjoint
// regions. Two facts make the scheme sound:
//
//   - A segment's territory is a pure function of its terminals: the
//     terminal bounding box expanded by the maze router's detour halo.
//     Every path the segment has ever carried (pattern route or maze
//     route) and every edge a reroute may rip up, probe, or occupy
//     lies inside it.
//
//   - Cell-disjoint rectangles are edge-disjoint: a grid edge belongs
//     to a rectangle only when both endpoint gcells do, so two regions
//     that share no gcell share no edge.
//
// Segments whose territory straddles a cut line form that cut node's
// boundary bucket. Buckets are scheduled by tree depth, deepest level
// first, after every leaf region has finished: a bucket's territories
// all live inside its node's rectangle, and nodes at the same depth
// have pairwise disjoint rectangles, so the buckets of one level are
// edge-disjoint and run concurrently (each bucket itself is routed
// serially — its members may overlap one another). A bucket only ever
// runs after everything spatially inside its rectangle (descendant
// regions and deeper buckets) has settled, and before any ancestor
// bucket that contains it.
//
// The partition depends only on the grid geometry and the failing set
// — never on the worker count — which is what keeps the negotiation
// byte-identical for any Workers value.

// gridRect is an inclusive gcell rectangle [X0,X1]×[Y0,Y1].
type gridRect struct {
	X0, Y0, X1, Y1 int
}

// contains reports whether r fully contains t.
func (r gridRect) contains(t gridRect) bool {
	return t.X0 >= r.X0 && t.X1 <= r.X1 && t.Y0 >= r.Y0 && t.Y1 <= r.Y1
}

// territory returns the gcell rectangle a segment with terminals a, b
// can touch: the terminal bounding box expanded by the maze router's
// halo, clamped to the grid.
func (g *Grid) territory(a, b [2]int) gridRect {
	x0, x1 := minmax(a[0], b[0])
	y0, y1 := minmax(a[1], b[1])
	return gridRect{
		X0: clampInt(x0-mazeHalo, 0, g.NX-1),
		X1: clampInt(x1+mazeHalo, 0, g.NX-1),
		Y0: clampInt(y0-mazeHalo, 0, g.NY-1),
		Y1: clampInt(y1+mazeHalo, 0, g.NY-1),
	}
}

// regionPlan is one round's partition: per-region segment index lists
// (each ascending) with their rectangles (pairwise cell-disjoint), and
// the per-level boundary buckets of segments straddling cut lines.
type regionPlan struct {
	Regions [][]int
	Rects   []gridRect
	// BoundaryLevels[d] holds the straddler buckets of the cut nodes
	// at bisection depth d, with their node rectangles in
	// BoundaryRects[d]. Within one level the rectangles are pairwise
	// disjoint; the scheduler runs levels deepest-first.
	BoundaryLevels [][][]int
	BoundaryRects  [][]gridRect
}

// boundaryCount returns the total number of straddler segments.
func (p *regionPlan) boundaryCount() int {
	n := 0
	for _, level := range p.BoundaryLevels {
		for _, bucket := range level {
			n += len(bucket)
		}
	}
	return n
}

// Partitioning thresholds. All are properties of the workload, not of
// the machine, so the plan is identical everywhere.
const (
	// maxRegionSegments is the largest failing-segment count a leaf
	// region keeps without attempting another cut.
	maxRegionSegments = 48
	// minRegionSpan is the smallest rectangle dimension a cut may
	// leave on either side: below roughly twice the maze halo every
	// territory straddles the cut and the split only grows the
	// boundary buckets. A rectangle under 2×minRegionSpan on both
	// axes admits no cut and becomes a leaf.
	minRegionSpan = 2 * (2*mazeHalo + 1)
	// maxRegionDepth bounds the bisection recursion (2^12 leaves is
	// far beyond any useful parallelism).
	maxRegionDepth = 12
)

// partitionRegions bisects the failing segments (ascending indices)
// into the round's region plan. terr[i] must be the territory of
// segment fail[i]'s terminals within bounds.
func partitionRegions(fail []int, terr []gridRect, bounds gridRect) regionPlan {
	var plan regionPlan
	plan.split(fail, terr, bounds, 0)
	return plan
}

// split recursively bisects one rectangle. items and terr are parallel
// slices; both are consumed (the callee may reuse their backing
// arrays for the sub-partitions).
func (p *regionPlan) split(items []int, terr []gridRect, rect gridRect, depth int) {
	if len(items) == 0 {
		return
	}
	w, h := rect.X1-rect.X0+1, rect.Y1-rect.Y0+1
	if len(items) <= maxRegionSegments || depth >= maxRegionDepth ||
		(w < 2*minRegionSpan && h < 2*minRegionSpan) {
		p.Regions = append(p.Regions, items)
		p.Rects = append(p.Rects, rect)
		return
	}
	// Pick the cut minimizing stranded territories plus imbalance
	// (regions.go bestCutOf). Congested designs cluster failing
	// segments into blobs; a cut through a blob strands the whole
	// blob, while the scan slides the line into the gap beside it. The
	// scan depends only on the territories and the rectangle, so every
	// worker count sees the same plan.
	cut, horiz, straddle := bestCutOf(items, terr, rect)
	// A congestion blob — overlapping territories around one hot spot —
	// straddles every line through it. When even the best cut strands
	// most of the items, keep the cluster whole as one region (it runs
	// on a single worker, concurrently with the other regions) rather
	// than feeding it to a semi-serial boundary bucket.
	if 2*straddle > len(items) {
		p.Regions = append(p.Regions, items)
		p.Rects = append(p.Rects, rect)
		return
	}
	var left, right gridRect
	if horiz {
		left = gridRect{X0: rect.X0, Y0: rect.Y0, X1: rect.X1, Y1: cut - 1}
		right = gridRect{X0: rect.X0, Y0: cut, X1: rect.X1, Y1: rect.Y1}
	} else {
		left = gridRect{X0: rect.X0, Y0: rect.Y0, X1: cut - 1, Y1: rect.Y1}
		right = gridRect{X0: cut, Y0: rect.Y0, X1: rect.X1, Y1: rect.Y1}
	}
	var ri int
	lItems := make([]int, 0, len(items)/2)
	lTerr := make([]gridRect, 0, len(items)/2)
	var bucket []int
	for k, it := range items {
		t := terr[k]
		switch {
		case left.contains(t):
			lItems = append(lItems, it)
			lTerr = append(lTerr, t)
		case right.contains(t):
			// Compact the right half in place; items/terr are ours to
			// reuse (the caller handed them off).
			items[ri] = it
			terr[ri] = t
			ri++
		default:
			bucket = append(bucket, it)
		}
	}
	if len(bucket) > 0 {
		for len(p.BoundaryLevels) <= depth {
			p.BoundaryLevels = append(p.BoundaryLevels, nil)
			p.BoundaryRects = append(p.BoundaryRects, nil)
		}
		p.BoundaryLevels[depth] = append(p.BoundaryLevels[depth], bucket)
		p.BoundaryRects[depth] = append(p.BoundaryRects[depth], rect)
	}
	p.split(lItems, lTerr, left, depth+1)
	p.split(items[:ri], terr[:ri], right, depth+1)
}

// bestCutOf scans every admissible cut position on both axes and
// returns the line minimizing 4×straddlers + |left−right| — stranding
// few territories matters most, but a pure minimum-straddle objective
// degenerates into shaving empty slivers off the rectangle's edge, so
// imbalance is penalized too. Returns the cut coordinate, the
// orientation (horizontal = a y-cut), and the straddler count.
// Tie-breaks are positional (x-cuts before y-cuts, lower coordinates
// first) so the choice is deterministic. A cut is admissible when both
// halves keep at least minRegionSpan cells; if neither axis admits one
// the fallback is the vertical midline with everything stranded.
func bestCutOf(items []int, terr []gridRect, rect gridRect) (cut int, horizontal bool, straddle int) {
	bestCut, bestHoriz := -1, false
	bestStraddle, bestCost := len(items), len(items)*8
	// scan sweeps cuts c in [lo+minRegionSpan, hi+1-minRegionSpan]
	// along one axis using difference arrays: straddle(c) =
	// #{t : t.lo < c ≤ t.hi} and left(c) = #{t : t.hi < c} accumulate
	// incrementally.
	scan := func(lo, hi int, horiz bool) {
		if hi-lo+1 < 2*minRegionSpan {
			return
		}
		span := hi - lo + 1
		strad := make([]int, span+2)
		leftEnd := make([]int, span+2)
		for k := range items {
			t := terr[k]
			a, b := t.X0, t.X1
			if horiz {
				a, b = t.Y0, t.Y1
			}
			strad[a+1-lo]++
			strad[b+1-lo]--
			leftEnd[b-lo]++
		}
		s, l := 0, 0
		for c := lo + 1; c <= hi; c++ {
			s += strad[c-lo]
			l += leftEnd[c-1-lo]
			if c < lo+minRegionSpan || c > hi+1-minRegionSpan {
				continue
			}
			cost := 4*s + abs(2*l+s-len(items))
			if cost < bestCost {
				bestCut, bestHoriz = c, horiz
				bestStraddle, bestCost = s, cost
			}
		}
	}
	scan(rect.X0, rect.X1, false)
	scan(rect.Y0, rect.Y1, true)
	if bestCut < 0 {
		return rect.X0 + (rect.X1-rect.X0+1)/2, false, len(items)
	}
	return bestCut, bestHoriz, bestStraddle
}

// Package route implements the global-routing substrate: a capacity
// grid derived from the die size and metal-layer count, pattern (L/Z)
// initial routing, congestion-driven rip-up and reroute, overflow
// counting, and the congestion map the paper's methodology consults
// before committing to detailed place & route.
//
// "Routing violations" in the experiments are reported as failed
// connections — two-pin route segments whose final path crosses an
// over-capacity edge — the closest global-routing analogue of the
// detailed-router violation counts the paper obtains from Silicon
// Ensemble; raw track overflow is reported alongside.
package route

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"casyn/internal/geom"
	"casyn/internal/place"
)

// Options tunes the router.
type Options struct {
	// GCellSize is the routing grid pitch in µm (default: twice the
	// layout row height).
	GCellSize float64
	// MetalLayers is the number of routing layers (default 3: one
	// horizontal, one vertical, plus a fragmented intra-cell layer
	// modeled as reduced capacity).
	MetalLayers int
	// TrackPitch is the routing track pitch in µm (default 0.56, a
	// 0.18 µm-class value).
	TrackPitch float64
	// UtilizationPenalty scales how much local cell density eats
	// routing capacity over the cells (default 0.35).
	UtilizationPenalty float64
	// RipupIterations bounds the rip-up/reroute negotiation rounds.
	// 0 means "use the default" (3); a negative value disables rip-up
	// entirely, equivalent to setting DisableRipup.
	RipupIterations int
	// DisableRipup skips the rip-up/reroute negotiation, leaving the
	// first-pass pattern routing as the final result. The explicit form
	// of the RipupIterations < 0 contract.
	DisableRipup bool
	// CapacityScale multiplies every edge capacity (default 1). The
	// experiment configurations use it to calibrate this global
	// router's capacity model against the commercial detailed router
	// the paper measured with (whose placement and routing are
	// stronger than this substrate's).
	CapacityScale float64
	// CongestionExponent shapes the maze router's edge cost (default 2).
	CongestionExponent float64
	// Workers bounds the goroutines of the initial routing sweep and of
	// the rip-up/reroute negotiation: 0 = runtime.GOMAXPROCS,
	// 1 = serial. Results are byte-identical for every value — the
	// sweep works in fixed batches against an immutable congestion
	// snapshot, and rip-up routes spatially disjoint regions whose
	// partition never depends on the worker count — so only wall-clock
	// time changes.
	Workers int
	// Regions, when it holds more than one rectangle, declares the die
	// regions of a multi-die workload (partition.DieRegions). Grid
	// edges crossing a region boundary are derated by
	// RegionBoundaryDerate — inter-die connections are scarcer than
	// on-die tracks — and nets spanning more than one region are
	// checked against RegionPinBudget before routing starts.
	Regions []geom.Rect
	// RegionPinBudget caps how many nets may cross region boundaries
	// when Regions is set: 0 derives the budget from the derated
	// capacity of the boundary-crossing edges, a negative value
	// disables the admission check.
	RegionPinBudget int
	// RegionBoundaryDerate scales the capacity of boundary-crossing
	// edges (default 0.5).
	RegionBoundaryDerate float64
}

func (o *Options) defaults(layout place.Layout) {
	if o.GCellSize == 0 {
		o.GCellSize = 2 * layout.RowHeight
	}
	if o.MetalLayers == 0 {
		o.MetalLayers = 3
	}
	if o.TrackPitch == 0 {
		o.TrackPitch = 0.56
	}
	if o.UtilizationPenalty == 0 {
		o.UtilizationPenalty = 0.35
	}
	if o.RipupIterations == 0 {
		o.RipupIterations = 3
	}
	if o.DisableRipup || o.RipupIterations < 0 {
		o.DisableRipup = true
		o.RipupIterations = 0
	}
	if o.CongestionExponent == 0 {
		o.CongestionExponent = 2
	}
	if o.CapacityScale == 0 {
		o.CapacityScale = 1
	}
	if o.RegionBoundaryDerate == 0 {
		o.RegionBoundaryDerate = 0.5
	}
}

// Grid is the global-routing graph: NX×NY gcells with capacitated
// boundary edges. Horizontal edges carry horizontal-layer tracks,
// vertical edges vertical-layer tracks.
type Grid struct {
	NX, NY int
	CellW  float64
	CellH  float64
	Origin geom.Point
	// capH[y][x] is the capacity of the edge (x,y)-(x+1,y); usageH its
	// occupancy. Likewise capV/usageV for (x,y)-(x,y+1).
	capH, capV     [][]float64
	usageH, usageV [][]float64
	histH, histV   [][]float64 // rip-up history cost

	// CrossRegionCapacity is the summed (derated) track capacity of
	// the edges crossing die-region boundaries — the auto inter-die
	// pin budget. Zero unless Options.Regions held > 1 region.
	CrossRegionCapacity float64

	// Congestion-map cache: congMap is the last map computed by
	// CongestionMap, valid while congDirty is false. Every usage write
	// funnels through addUsage, which marks the cache dirty; the flag
	// is atomic because rip-up negotiation calls addUsage concurrently
	// from disjoint-region workers. congMu serializes recomputation so
	// concurrent readers share one map.
	congDirty atomic.Bool
	congMu    sync.Mutex
	congMap   [][]float64
}

// NewGrid builds the routing grid for a layout. cellDensity, if
// non-nil, gives per-gcell cell-area density in [0,1] used to derate
// capacity over dense regions (indexed [y][x]); pass nil for full
// capacity.
func NewGrid(layout place.Layout, opts Options, cellDensity [][]float64) (*Grid, error) {
	opts.defaults(layout)
	nx := int(math.Ceil(layout.Die.W() / opts.GCellSize))
	ny := int(math.Ceil(layout.Die.H() / opts.GCellSize))
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("route: degenerate grid %dx%d", nx, ny)
	}
	g := &Grid{
		NX:     nx,
		NY:     ny,
		CellW:  layout.Die.W() / float64(nx),
		CellH:  layout.Die.H() / float64(ny),
		Origin: layout.Die.Min,
	}
	// Track budget: with 3 layers, one layer routes horizontally and
	// one vertically; extra layers add full capacity in alternating
	// directions.
	hLayers := 1 + max0(opts.MetalLayers-3)/2
	vLayers := 1 + max0(opts.MetalLayers-2)/2
	baseH := float64(hLayers) * g.CellH / opts.TrackPitch * opts.CapacityScale
	baseV := float64(vLayers) * g.CellW / opts.TrackPitch * opts.CapacityScale
	alloc := func() [][]float64 {
		m := make([][]float64, ny)
		for y := range m {
			m[y] = make([]float64, nx)
		}
		return m
	}
	g.capH, g.capV = alloc(), alloc()
	g.usageH, g.usageV = alloc(), alloc()
	g.histH, g.histV = alloc(), alloc()
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			derate := 1.0
			if cellDensity != nil {
				d := cellDensity[y][x]
				if d > 1 {
					d = 1
				}
				derate = 1 - opts.UtilizationPenalty*d
			}
			g.capH[y][x] = baseH * derate
			g.capV[y][x] = baseV * derate
		}
	}
	if len(opts.Regions) > 1 {
		g.derateRegionBoundaries(opts)
	}
	return g, nil
}

// derateRegionBoundaries scales down the capacity of every edge whose
// two gcells sit in different die regions and accumulates the
// remaining cross-boundary capacity (the auto inter-die pin budget).
func (g *Grid) derateRegionBoundaries(opts Options) {
	regionAt := make([]int, g.NY*g.NX)
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			regionAt[y*g.NX+x] = regionIndexOf(g.Center(x, y), opts.Regions)
		}
	}
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if x+1 < g.NX && regionAt[y*g.NX+x] != regionAt[y*g.NX+x+1] {
				g.capH[y][x] *= opts.RegionBoundaryDerate
				g.CrossRegionCapacity += g.capH[y][x]
			}
			if y+1 < g.NY && regionAt[y*g.NX+x] != regionAt[(y+1)*g.NX+x] {
				g.capV[y][x] *= opts.RegionBoundaryDerate
				g.CrossRegionCapacity += g.capV[y][x]
			}
		}
	}
}

// regionIndexOf returns the first region containing p, or the region
// with the nearest center when p lies outside all of them (perimeter
// pads sit exactly on the die edge, which Contains covers; the
// fallback handles out-of-die coordinates).
func regionIndexOf(p geom.Point, regions []geom.Rect) int {
	for i, r := range regions {
		if r.Contains(p) {
			return i
		}
	}
	best, bestD := 0, math.Inf(1)
	for i, r := range regions {
		if d := p.Manhattan(r.Center()); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// GCellOf returns the grid coordinates containing point p, clamped to
// the grid.
func (g *Grid) GCellOf(p geom.Point) (int, int) {
	x := int((p.X - g.Origin.X) / g.CellW)
	y := int((p.Y - g.Origin.Y) / g.CellH)
	if x < 0 {
		x = 0
	}
	if x >= g.NX {
		x = g.NX - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.NY {
		y = g.NY - 1
	}
	return x, y
}

// Center returns the center point of gcell (x, y).
func (g *Grid) Center(x, y int) geom.Point {
	return geom.Pt(
		g.Origin.X+(float64(x)+0.5)*g.CellW,
		g.Origin.Y+(float64(y)+0.5)*g.CellH,
	)
}

// edge identifies one grid edge.
type edge struct {
	x, y       int
	horizontal bool
}

// addUsage adjusts an edge's occupancy by delta tracks. It is the
// single usage-write chokepoint, so it also invalidates the cached
// congestion map.
func (g *Grid) addUsage(e edge, delta float64) {
	if e.horizontal {
		g.usageH[e.y][e.x] += delta
	} else {
		g.usageV[e.y][e.x] += delta
	}
	g.congDirty.Store(true)
}

// overflowOf returns the edge's overflow in tracks.
func (g *Grid) overflowOf(e edge) float64 {
	if e.horizontal {
		return g.usageH[e.y][e.x] - g.capH[e.y][e.x]
	}
	return g.usageV[e.y][e.x] - g.capV[e.y][e.x]
}

// TotalOverflow sums positive overflow over all edges (in tracks),
// rounded to whole violations.
func (g *Grid) TotalOverflow() int {
	t := 0.0
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if ov := g.usageH[y][x] - g.capH[y][x]; ov > 0 {
				t += ov
			}
			if ov := g.usageV[y][x] - g.capV[y][x]; ov > 0 {
				t += ov
			}
		}
	}
	return int(math.Round(t))
}

// CongestionMap returns, per gcell, the maximum of the adjacent edges'
// usage/capacity ratios — the congestion map the methodology inspects.
// The map is cached on the grid and invalidated by every usage write
// (addUsage), so repeated calls between routing passes are free; each
// recomputation builds a fresh slice, so a previously returned map
// stays a consistent snapshot of the usage it was computed from and
// callers must not mutate it. Safe to call concurrently with other
// CongestionMap calls. Usage writes must be ordered before the read
// (the router only reads between negotiation rounds); the dirty flag
// is atomic so invalidations from concurrent disjoint-region workers
// are never lost, not to license reading mid-write.
func (g *Grid) CongestionMap() [][]float64 {
	g.congMu.Lock()
	defer g.congMu.Unlock()
	if g.congMap != nil && !g.congDirty.Load() {
		return g.congMap
	}
	// Clear before reading usage: a concurrent addUsage after this
	// point re-dirties the flag and forces the next call to recompute.
	g.congDirty.Store(false)
	m := make([][]float64, g.NY)
	for y := range m {
		m[y] = make([]float64, g.NX)
		for x := range m[y] {
			r := 0.0
			consider := func(u, c float64) {
				if c <= 0 {
					if u > 0 {
						r = math.Max(r, 2)
					}
					return
				}
				r = math.Max(r, u/c)
			}
			consider(g.usageH[y][x], g.capH[y][x])
			consider(g.usageV[y][x], g.capV[y][x])
			if x > 0 {
				consider(g.usageH[y][x-1], g.capH[y][x-1])
			}
			if y > 0 {
				consider(g.usageV[y-1][x], g.capV[y-1][x])
			}
			m[y][x] = r
		}
	}
	g.congMap = m
	return m
}

// HotSpot is one over-capacity grid edge: the (x, y) gcell the edge
// leaves, its direction, and how badly it overflowed. The flow's
// per-iteration Metrics carry the worst few as the machine-readable
// answer to "where did routability fail".
type HotSpot struct {
	X, Y int
	// Horizontal marks the edge (x,y)-(x+1,y); otherwise (x,y)-(x,y+1).
	Horizontal bool
	// Overflow is usage minus capacity in tracks (> 0).
	Overflow float64
	// Congestion is the usage/capacity ratio (2 when capacity is 0).
	Congestion float64
}

// HotSpots returns the n worst over-capacity edges, ordered by
// overflow descending with (y, x, horizontal-first) tie-breaks so the
// list is deterministic. Empty when nothing overflowed.
func (g *Grid) HotSpots(n int) []HotSpot {
	var out []HotSpot
	add := func(x, y int, horizontal bool, usage, cap2 float64) {
		ov := usage - cap2
		if ov <= 0 {
			return
		}
		h := HotSpot{X: x, Y: y, Horizontal: horizontal, Overflow: ov, Congestion: 2}
		if cap2 > 0 {
			h.Congestion = usage / cap2
		}
		out = append(out, h)
	}
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			add(x, y, true, g.usageH[y][x], g.capH[y][x])
			add(x, y, false, g.usageV[y][x], g.capV[y][x])
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Overflow > out[j].Overflow
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MaxCongestion returns the worst usage/capacity ratio on any edge.
func (g *Grid) MaxCongestion() float64 {
	worst := 0.0
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if g.capH[y][x] > 0 {
				worst = math.Max(worst, g.usageH[y][x]/g.capH[y][x])
			}
			if g.capV[y][x] > 0 {
				worst = math.Max(worst, g.usageV[y][x]/g.capV[y][x])
			}
		}
	}
	return worst
}

package route

import (
	"bufio"
	"fmt"
	"io"
)

// WriteCongestionMap renders the grid's congestion map as an ASCII
// heatmap, top row first (the orientation of a die plot). Each cell is
// one character by utilization band:
//
//	' ' < 25%   ░ < 50%   ▒ < 75%   ▓ < 100%   █ ≥ 100% (overflow)
//
// This is the "congestion map" the paper's Figure 3 flow inspects
// before deciding whether to raise K.
func (g *Grid) WriteCongestionMap(w io.Writer) error {
	bw := bufio.NewWriter(w)
	m := g.CongestionMap()
	fmt.Fprintf(bw, "congestion map %dx%d gcells (max %.2f)\n", g.NX, g.NY, g.MaxCongestion())
	for y := g.NY - 1; y >= 0; y-- {
		fmt.Fprint(bw, "|")
		for x := 0; x < g.NX; x++ {
			fmt.Fprint(bw, bandChar(m[y][x]))
		}
		fmt.Fprintln(bw, "|")
	}
	return bw.Flush()
}

func bandChar(u float64) string {
	switch {
	case u >= 1.0:
		return "█"
	case u >= 0.75:
		return "▓"
	case u >= 0.5:
		return "▒"
	case u >= 0.25:
		return "░"
	default:
		return " "
	}
}

// HotspotCount returns the number of gcells whose congestion exceeds
// the threshold (e.g. 1.0 for overflow, 0.9 for "nearly full") — the
// scalar the flow's "is congestion OK?" decision uses alongside the
// violation count.
func (g *Grid) HotspotCount(threshold float64) int {
	n := 0
	for _, row := range g.CongestionMap() {
		for _, u := range row {
			if u >= threshold {
				n++
			}
		}
	}
	return n
}

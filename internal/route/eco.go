package route

// This file implements incremental (ECO) rerouting: after a local
// edit, only the nets whose terminals changed are ripped up and
// rerouted, against the persisted congestion history of the previous
// routing, so the negotiation resumes where it left off instead of
// relearning the hot spots. Residual overflow the baseline
// negotiation already settled for is treated as settled (the router's
// overflow floor), and only the edited nets' segments are eligible
// for rip-up rounds — everything else keeps its routed path verbatim,
// and marginal overflow the edit adds on a saturated design is
// reported rather than re-negotiated globally.
//
// Incremental rerouting is deliberately NOT byte-identical to a
// from-scratch RouteNetlist of the edited design: the first pass's
// L-shape choices read accumulated congestion, so any reroute
// ordering that skips clean nets observes different intermediate
// state. The contract is instead: (1) an unchanged design returns the
// previous result verbatim, (2) the final grid usage exactly equals
// the sum of the final paths, and (3) only nets whose terminals
// changed or whose territory intersects the dirty region change
// paths. The eco invariant tests pin all three; the differential ECO
// harness proves byte-identity of the exact path (full reroute),
// which flow.RunECO uses by default.

import (
	"context"
	"fmt"

	"casyn/internal/obs"
	"casyn/internal/place"
)

// State captures a completed routing for incremental reuse: the
// settled grid (usage and negotiation history), every segment's final
// path, and the per-net terminal gcells the next routing is diffed
// against.
type State struct {
	layout place.Layout
	opts   Options // defaulted
	grid   *Grid
	segs   []twoPin
	// segsOfNet[ni] indexes segs for net ni, in mstPairs order.
	segsOfNet [][]int
	// netTerms[ni] is net ni's deduped terminal gcells.
	netTerms [][][2]int
	res      *Result
}

// Result returns the routing result the state captured.
func (s *State) Result() *Result { return s.res }

func newState(layout place.Layout, opts Options, g *Grid, segs []twoPin, netTerms [][][2]int, res *Result) *State {
	st := &State{
		layout:    layout,
		opts:      opts,
		grid:      g,
		segs:      segs,
		segsOfNet: make([][]int, len(netTerms)),
		netTerms:  netTerms,
		res:       res,
	}
	// segs are globally sorted; per-net index lists must recover the
	// mstPairs emission order, which ascending (a, b) scan order does
	// not. Rebuild by replaying mstPairs? No — record by matching:
	// collect indices per net, then order them to match mstPairs by
	// walking the pairs. Cheaper and simpler: index segs per net in
	// their sorted positions, then reorder to mstPairs order below.
	byNet := make(map[int][]int, len(netTerms))
	for i := range segs {
		byNet[segs[i].net] = append(byNet[segs[i].net], i)
	}
	for ni, pts := range netTerms {
		if len(pts) < 2 {
			continue
		}
		idx := byNet[ni]
		ordered := make([]int, 0, len(idx))
		for _, pr := range mstPairs(g, pts) {
			for _, i := range idx {
				if segs[i].a == pr[0] && segs[i].b == pr[1] {
					ordered = append(ordered, i)
					idx = removeFirst(idx, i)
					break
				}
			}
		}
		st.segsOfNet[ni] = ordered
	}
	return st
}

func removeFirst(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}

// intersects reports whether two grid rectangles share a cell.
func (r gridRect) intersects(o gridRect) bool {
	return r.X0 <= o.X1 && o.X0 <= r.X1 && r.Y0 <= o.Y1 && o.Y0 <= r.Y1
}

// union grows r to cover o.
func (r gridRect) union(o gridRect) gridRect {
	if o.X0 < r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 < r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 > r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 > r.Y1 {
		r.Y1 = o.Y1
	}
	return r
}

// termTerritory is a net's territory: the bounding box of its terminal
// gcells expanded by mazeHalo — the multi-terminal generalization of
// Grid.territory, and exactly the union of its segments' territories.
func termTerritory(g *Grid, pts [][2]int) gridRect {
	r := gridRect{X0: pts[0][0], Y0: pts[0][1], X1: pts[0][0], Y1: pts[0][1]}
	for _, p := range pts[1:] {
		r = r.union(gridRect{X0: p[0], Y0: p[1], X1: p[0], Y1: p[1]})
	}
	r.X0 = clampInt(r.X0-mazeHalo, 0, g.NX-1)
	r.Y0 = clampInt(r.Y0-mazeHalo, 0, g.NY-1)
	r.X1 = clampInt(r.X1+mazeHalo, 0, g.NX-1)
	r.Y1 = clampInt(r.Y1+mazeHalo, 0, g.NY-1)
	return r
}

// copyHistoryFrom persists o's negotiation history onto g. Grids must
// have identical dimensions.
func (g *Grid) copyHistoryFrom(o *Grid) {
	for y := 0; y < g.NY; y++ {
		copy(g.histH[y], o.histH[y])
		copy(g.histV[y], o.histV[y])
	}
}

// capacityDiffRect returns the bounding box of gcells whose edge
// capacities differ between the grids (a placement change moves cell
// density, which derates capacity), and whether any differ.
func capacityDiffRect(a, b *Grid) (gridRect, bool) {
	var r gridRect
	found := false
	for y := 0; y < a.NY; y++ {
		for x := 0; x < a.NX; x++ {
			if a.capH[y][x] == b.capH[y][x] && a.capV[y][x] == b.capV[y][x] {
				continue
			}
			c := gridRect{X0: x, Y0: y, X1: x, Y1: y}
			if !found {
				r, found = c, true
			} else {
				r = r.union(c)
			}
		}
	}
	return r, found
}

// maxDirtyRects bounds the dirty-region representation; past it the
// region collapses to one bounding box (the conservative pre-existing
// behavior). A handful of moved cells stays well under it.
const maxDirtyRects = 64

// dirtyRegion is a set of dirty rectangles. Keeping them separate
// instead of unioning into one bounding box is what makes incremental
// rerouting local: a few moved cells scattered across the die would
// otherwise bound a box covering most of the grid and rip up nearly
// every net. Every rect is still conservative (a superset of the true
// dirty cells), so shrinking the region never violates the RouteECO
// contract — it only keeps more clean nets' paths.
type dirtyRegion struct {
	rects []gridRect
}

func (d *dirtyRegion) empty() bool { return len(d.rects) == 0 }

// add inserts a rect, merging it with any rect it intersects and
// collapsing the whole region to one bounding box past maxDirtyRects.
func (d *dirtyRegion) add(r gridRect) {
	for i := range d.rects {
		if d.rects[i].intersects(r) {
			d.rects[i] = d.rects[i].union(r)
			return
		}
	}
	if len(d.rects) >= maxDirtyRects {
		for _, o := range d.rects[1:] {
			d.rects[0] = d.rects[0].union(o)
		}
		d.rects = d.rects[:1]
		d.rects[0] = d.rects[0].union(r)
		return
	}
	d.rects = append(d.rects, r)
}

func (d *dirtyRegion) intersects(r gridRect) bool {
	for _, o := range d.rects {
		if o.intersects(r) {
			return true
		}
	}
	return false
}

// addCapacityDiff appends the gcells whose edge capacities differ
// between the grids, as per-row runs of consecutive cells — the
// piecewise version of capacityDiffRect.
func (d *dirtyRegion) addCapacityDiff(a, b *Grid) {
	for y := 0; y < a.NY; y++ {
		run := -1
		for x := 0; x <= a.NX; x++ {
			diff := x < a.NX && (a.capH[y][x] != b.capH[y][x] || a.capV[y][x] != b.capV[y][x])
			if diff && run < 0 {
				run = x
			} else if !diff && run >= 0 {
				d.add(gridRect{X0: run, Y0: y, X1: x - 1, Y1: y})
				run = -1
			}
		}
	}
}

func equalTerms(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RouteECO incrementally reroutes the edited design against a previous
// routing State. Nets whose terminals changed are ripped up and
// rerouted — first pattern-routed in the canonical global order, then
// negotiated among themselves against the kept usage and the persisted
// congestion history, with the baseline's residual overflow accepted
// as settled (only overflow the edit introduced, by a new path or by a
// capacity shift under a moved cell, triggers rip-up rounds, and only
// the edited nets' segments are eligible for rip-up). Kept nets keep
// their previous paths verbatim; any marginal overflow the edit adds
// on a saturated design is reported in the Result rather than fought
// globally.
//
// An unchanged design (identical terminals and capacities) returns the
// previous Result and State verbatim. A design whose net count changed
// (the edit altered the netlist's shape beyond recognition by index)
// falls back to a full RouteNetlistState — same signature, counted on
// "eco.route_full".
func RouteECO(ctx context.Context, st *State, nl *place.Netlist, pl *place.Placement) (*Result, *State, error) {
	rec := obs.From(ctx)
	if st == nil {
		return nil, nil, fmt.Errorf("route: RouteECO needs a previous State")
	}
	if len(pl.Pos) != nl.NumCells() {
		return nil, nil, fmt.Errorf("route: placement for %d cells, netlist has %d", len(pl.Pos), nl.NumCells())
	}
	if len(nl.Nets) != len(st.netTerms) {
		rec.Add("eco.route_full", 1)
		return RouteNetlistState(ctx, nl, pl, st.layout, st.opts)
	}
	opts := st.opts
	density, err := cellDensity(nl, pl, st.layout, opts)
	if err != nil {
		return nil, nil, err
	}
	g, err := NewGrid(st.layout, opts, density)
	if err != nil {
		return nil, nil, err
	}
	if g.NX != st.grid.NX || g.NY != st.grid.NY {
		rec.Add("eco.route_full", 1)
		return RouteNetlistState(ctx, nl, pl, st.layout, st.opts)
	}

	// The dirty region: the gcells whose capacity derate shifted under
	// moved cells, kept as separate rects so scattered small edits stay
	// local. Nets whose terminals changed are ripped directly; their
	// neighbors are not — any conflict a changed net's new path causes
	// is exactly what the post-rip negotiation resolves.
	var dirty dirtyRegion
	dirty.addCapacityDiff(st.grid, g)
	terms := make([][][2]int, len(nl.Nets))
	var changed []int
	var ptsBuf [][2]int
	for ni := range nl.Nets {
		pts := terminalCells(g, nl, pl, ni, ptsBuf[:0])
		ptsBuf = pts
		terms[ni] = append([][2]int(nil), pts...)
		if !equalTerms(st.netTerms[ni], terms[ni]) {
			changed = append(changed, ni)
		}
	}
	if dirty.empty() && len(changed) == 0 {
		// Nothing moved and nothing reconnected: the previous routing
		// is the routing.
		rec.Add("eco.route_nets_kept", int64(len(nl.Nets)))
		return st.res, st, nil
	}

	// Persist the negotiated history — the learned congestion map — so
	// rerouting resumes rather than relearns.
	g.copyHistoryFrom(st.grid)

	// Only changed nets are ripped outright. Kept nets whose paths the
	// capacity shift or a changed net's new path now overflow are
	// caught by the floor-gated negotiation below — per offending
	// segment, instead of preemptively ripping every net whose
	// territory overlaps the dirty region (on a coarse grid that is a
	// large fraction of the design).
	rip := make([]bool, len(nl.Nets))
	for _, ni := range changed {
		rip[ni] = true
	}
	ripped := len(changed)

	// Rebuild the canonical segment list. Kept nets carry their
	// previous paths (same terminals → same mstPairs, index-aligned
	// with the previous state); ripped nets start pathless.
	var segs []twoPin
	for ni := range nl.Nets {
		pts := terms[ni]
		if len(pts) < 2 {
			continue
		}
		prs := mstPairs(g, pts)
		if !rip[ni] && len(st.segsOfNet[ni]) == len(prs) {
			for k, pr := range prs {
				segs = append(segs, twoPin{net: ni, a: pr[0], b: pr[1], path: st.segs[st.segsOfNet[ni][k]].path})
			}
		} else {
			for _, pr := range prs {
				segs = append(segs, twoPin{net: ni, a: pr[0], b: pr[1]})
			}
		}
	}
	sortSegs(segs)
	reroute := make([]bool, len(segs))
	for i := range segs {
		reroute[i] = segs[i].path == nil
	}

	rec.Add("route.nets", int64(len(nl.Nets)))
	rec.Add("route.segments", int64(len(segs)))
	rec.Add("eco.route_nets_changed", int64(len(changed)))
	rec.Add("eco.route_dirty_rects", int64(len(dirty.rects)))
	rec.Add("eco.route_nets_ripped", int64(ripped))
	rec.Add("eco.route_nets_kept", int64(len(nl.Nets)-ripped))

	// Re-apply the kept paths' usage, then pattern-route the ripped
	// segments in canonical order against it, then negotiate everything
	// under the persisted history.
	check := cancelChecker{ctx: ctx}
	for i := range segs {
		if reroute[i] {
			continue
		}
		if err := check.tick(); err != nil {
			return nil, nil, fmt.Errorf("route: canceled: %w", err)
		}
		for _, e := range segs[i].path {
			g.addUsage(e, 1)
		}
	}
	r := newRouter(g, opts)
	// Residual overflow the baseline negotiation already settled for is
	// not this edit's problem (floorGrid), and kept nets' paths are
	// never ripped (eligible): the rounds below only rework the edited
	// nets against each other.
	r.floorGrid = st.grid
	r.eligible = reroute
	// Ripped segments maze-route directly — serially, in canonical
	// order, against the kept usage and the persisted history — instead
	// of the from-scratch flow's pattern-route first pass. An L-shape
	// through the design's settled hot spots would push saturated edges
	// over their floor and drag their every co-user into the
	// negotiation; the maze reads the congestion and threads around
	// them, so the rounds below have little or nothing left to fix.
	_, fpSpan := rec.StartSpan(ctx, "route.first_pass")
	s := r.scratch.Get().(*mazeScratch)
	for i := range segs {
		if !reroute[i] {
			continue
		}
		if err := check.tick(); err != nil {
			err = fmt.Errorf("route: canceled: %w", err)
			fpSpan.End(err)
			return nil, nil, err
		}
		r.reroute(s, &segs[i])
	}
	r.scratch.Put(s)
	fpSpan.End(nil)
	rounds, err := r.negotiate(ctx, rec, segs)
	if err != nil {
		return nil, nil, err
	}
	res := collectResult(g, nl, segs, rounds)
	if rec != nil {
		recordRouteMetrics(rec, nl, pl, g, res)
	}
	return res, newState(st.layout, opts, g, segs, terms, res), nil
}

package route

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"casyn/internal/geom"
	"casyn/internal/obs"
	"casyn/internal/par"
	"casyn/internal/place"
)

// Histogram bucket bounds for the router's observability metrics. The
// congestion bounds bracket the interesting region around capacity
// (1.0); the HPWL bounds are logarithmic in µm, as are the per-round
// overflow and region-population bounds.
var (
	congestionBounds = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1, 1.25, 1.5, 2}
	hpwlBounds       = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	overflowBounds   = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}
	regionSegBounds  = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// cancelCadence is how many inner-loop work items (segments applied or
// rerouted) pass between cooperative ctx checks. Shared by the
// first-pass and rip-up paths — including the per-region workers of
// the parallel negotiation, which each run their own checker — so the
// router's cancellation latency is one cadence of its cheapest unit of
// work no matter which phase is running.
const cancelCadence = 64

// ctxErr returns the router's wrapped error when ctx is done.
func ctxErr(ctx context.Context) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("route: canceled: %w", cerr)
	}
	return nil
}

// cancelChecker amortizes ctx checks over cancelCadence ticks. The
// zero value is not usable; construct with the ctx to watch. tick
// returns the raw ctx error (callers wrap via ctxErr at the phase
// boundary where the error is surfaced).
type cancelChecker struct {
	ctx context.Context
	n   int
}

func (c *cancelChecker) tick() error {
	c.n++
	if c.n%cancelCadence != 0 {
		return nil
	}
	return c.ctx.Err()
}

// Result is a completed global routing.
type Result struct {
	Grid *Grid
	// Violations is the total track overflow (the "routing violations"
	// column of the paper's tables).
	Violations int
	// OverflowEdges counts distinct over-capacity edges.
	OverflowEdges int
	// FailedConnections counts two-pin route segments whose final path
	// crosses at least one over-capacity edge — the closest analogue
	// of a detailed router's unroutable-connection count.
	FailedConnections int
	// WireLength is the total routed wirelength in µm.
	WireLength float64
	// NetLength is the routed length per net (µm), indexed like
	// nl.Nets; STA uses it for wire RC.
	NetLength []float64
	// MaxCongestion is the worst edge usage/capacity ratio.
	MaxCongestion float64
	// RipupRounds is the number of negotiation rounds that ran.
	RipupRounds int
	// CrossRegionNets counts nets whose pins span more than one die
	// region (0 unless Options.Regions was set).
	CrossRegionNets int
}

// Routable reports whether the layout routed without violations: no
// connection crosses an over-capacity edge.
func (r *Result) Routable() bool { return r.FailedConnections == 0 && r.Violations == 0 }

// twoPin is one routed two-pin segment of a net's spanning tree.
type twoPin struct {
	net  int
	a, b [2]int
	path []edge
}

// RouteNetlist globally routes the placed netlist. Pads participate as
// ordinary terminals. The cell-density capacity derate is computed
// from the placement itself.
//
// Cancellation is cooperative: the initial pattern-routing sweep and
// every rip-up/reroute round check ctx periodically (every
// cancelCadence segments) and return a wrapped ctx error promptly when
// it is canceled or its deadline passes.
//
// Both the first pass and the rip-up/reroute negotiation fan out
// across opts.Workers goroutines; results are byte-identical for every
// worker count (see the package comment in regions.go for why).
func RouteNetlist(ctx context.Context, nl *place.Netlist, pl *place.Placement, layout place.Layout, opts Options) (*Result, error) {
	res, _, err := routeNetlist(ctx, nl, pl, layout, opts, false)
	return res, err
}

// RouteNetlistState is RouteNetlist plus a captured State for
// incremental ECO rerouting (RouteECO). The Result is byte-identical
// to RouteNetlist's — capture only records, it never alters routing.
func RouteNetlistState(ctx context.Context, nl *place.Netlist, pl *place.Placement, layout place.Layout, opts Options) (*Result, *State, error) {
	return routeNetlist(ctx, nl, pl, layout, opts, true)
}

func routeNetlist(ctx context.Context, nl *place.Netlist, pl *place.Placement, layout place.Layout, opts Options, capture bool) (*Result, *State, error) {
	if len(pl.Pos) != nl.NumCells() {
		return nil, nil, fmt.Errorf("route: placement for %d cells, netlist has %d", len(pl.Pos), nl.NumCells())
	}
	opts.defaults(layout)
	density, err := cellDensity(nl, pl, layout, opts)
	if err != nil {
		return nil, nil, err
	}
	g, err := NewGrid(layout, opts, density)
	if err != nil {
		return nil, nil, err
	}
	r := newRouter(g, opts)

	// Multi-die admission: count the nets whose pins span more than
	// one die region and reject the run up front when they exceed the
	// inter-die pin budget — crossing nets consume scarce derated
	// boundary tracks, and a netlist that cannot fit them is better
	// failed loudly than routed into guaranteed overflow.
	crossRegion := 0
	if len(opts.Regions) > 1 {
		for ni := range nl.Nets {
			if netSpansRegions(nl, pl, ni, opts.Regions) {
				crossRegion++
			}
		}
		if opts.RegionPinBudget >= 0 {
			budget := opts.RegionPinBudget
			if budget == 0 {
				budget = int(g.CrossRegionCapacity)
			}
			if crossRegion > budget {
				return nil, nil, fmt.Errorf(
					"route: %d nets cross die-region boundaries, inter-die pin budget is %d",
					crossRegion, budget)
			}
		}
	}

	// Decompose every net into two-pin segments over gcell terminals.
	// The terminal buffer is reused across nets (profile-driven: a
	// fresh dedup map per net dominated setup time at 100k+ nets).
	var segs []twoPin
	var netTerms [][][2]int
	if capture {
		netTerms = make([][][2]int, len(nl.Nets))
	}
	var ptsBuf [][2]int
	for ni := range nl.Nets {
		pts := terminalCells(g, nl, pl, ni, ptsBuf[:0])
		ptsBuf = pts
		if capture {
			netTerms[ni] = append([][2]int(nil), pts...)
		}
		if len(pts) < 2 {
			continue
		}
		for _, pr := range mstPairs(g, pts) {
			segs = append(segs, twoPin{net: ni, a: pr[0], b: pr[1]})
		}
	}
	// Longer segments first: they have the least routing flexibility.
	sortSegs(segs)

	rec := obs.From(ctx)
	rec.Add("route.nets", int64(len(nl.Nets)))
	rec.Add("route.segments", int64(len(segs)))
	_, fpSpan := rec.StartSpan(ctx, "route.first_pass")

	// Initial pattern routing, in fixed batches. Within a batch every
	// segment is routed against the immutable congestion state frozen
	// at the batch boundary, so the segments are independent and fan
	// out across opts.Workers goroutines; their usage is then applied
	// in segment order before the next batch sees the grid. Batch
	// boundaries depend only on the segment indices — never on the
	// worker count — so the routing is byte-identical for any Workers
	// value, and the serial apply loop is the cancellation point.
	if err := r.firstPass(ctx, segs, nil); err != nil {
		fpSpan.End(err)
		return nil, nil, err
	}
	fpSpan.End(nil)

	rounds, err := r.negotiate(ctx, rec, segs)
	if err != nil {
		return nil, nil, err
	}

	res := collectResult(g, nl, segs, rounds)
	res.CrossRegionNets = crossRegion
	if rec != nil {
		recordRouteMetrics(rec, nl, pl, g, res)
	}
	var st *State
	if capture {
		st = newState(layout, opts, g, segs, netTerms, res)
	}
	return res, st, nil
}

// sortSegs orders segments longest-first (least routing flexibility),
// stably — the canonical global routing order shared by the full and
// the incremental paths.
func sortSegs(segs []twoPin) {
	sort.SliceStable(segs, func(i, j int) bool {
		di := abs(segs[i].a[0]-segs[i].b[0]) + abs(segs[i].a[1]-segs[i].b[1])
		dj := abs(segs[j].a[0]-segs[j].b[0]) + abs(segs[j].a[1]-segs[j].b[1])
		return di > dj
	})
}

// firstPass pattern-routes segments in fixed 256-segment batches
// against the congestion frozen at each batch boundary, applying usage
// serially in segment order between batches. When route is non-nil,
// only segments with route[i] true are pattern-routed — the others
// already carry a path whose usage was applied by the caller (the
// incremental path's kept nets). Byte-identical for any worker count.
func (r *router) firstPass(ctx context.Context, segs []twoPin, route []bool) error {
	const firstPassBatch = 256
	g := r.grid
	applyCheck := cancelChecker{ctx: ctx}
	for start := 0; start < len(segs); start += firstPassBatch {
		end := start + firstPassBatch
		if end > len(segs) {
			end = len(segs)
		}
		batch := segs[start:end]
		if err := par.ForEach(ctx, r.opts.Workers, len(batch), func(j int) error {
			if route == nil || route[start+j] {
				batch[j].path = r.patternRoute(batch[j].a, batch[j].b)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("route: canceled: %w", err)
		}
		for j := range batch {
			if err := applyCheck.tick(); err != nil {
				return fmt.Errorf("route: canceled: %w", err)
			}
			if route != nil && !route[start+j] {
				continue
			}
			for _, e := range batch[j].path {
				g.addUsage(e, 1)
			}
		}
	}
	return nil
}

// collectResult assembles a Result from the settled grid and segment
// paths.
func collectResult(g *Grid, nl *place.Netlist, segs []twoPin, rounds int) *Result {
	res := &Result{Grid: g, NetLength: make([]float64, len(nl.Nets)), RipupRounds: rounds}
	for i := range segs {
		l := 0.0
		failed := false
		for _, e := range segs[i].path {
			if e.horizontal {
				l += g.CellW
			} else {
				l += g.CellH
			}
			if g.overflowOf(e) > 0 {
				failed = true
			}
		}
		if failed {
			res.FailedConnections++
		}
		res.NetLength[segs[i].net] += l
		res.WireLength += l
	}
	res.Violations = g.TotalOverflow()
	res.MaxCongestion = g.MaxCongestion()
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if g.usageH[y][x] > g.capH[y][x] {
				res.OverflowEdges++
			}
			if g.usageV[y][x] > g.capV[y][x] {
				res.OverflowEdges++
			}
		}
	}
	return res
}

// negotiate is the congestion negotiation: rip up and reroute every
// segment crossing an overflowed edge, round by round, until the
// overflow clears or the round budget runs out. Each round
//
//  1. freezes the failing set against the start-of-round congestion,
//  2. partitions it into spatially disjoint regions plus per-depth
//     boundary buckets of segments straddling the cut lines
//     (regions.go),
//  3. maze-routes the regions concurrently on opts.Workers goroutines
//     — regions are edge-disjoint, so every worker reads and writes
//     only its own rectangle of the shared grid: the rest of the grid
//     is an immutable start-of-round snapshot from its point of view,
//     and its own writes are the region-local deltas,
//  4. routes the boundary buckets level by level, deepest first —
//     buckets within a level are edge-disjoint and run concurrently;
//     each bucket itself is routed serially against the settled grid.
//
// Within a region and within each boundary bucket, segments negotiate
// in ascending global index order, each reroute seeing its
// predecessors' usage — the sequential discipline negotiated
// congestion requires, applied per disjoint region. The partition, the
// per-region order, and the phase boundaries depend only on the
// failing set and the grid geometry, so the outcome is byte-identical
// at any worker count. Returns the number of rounds that ran.
func (r *router) negotiate(ctx context.Context, rec *obs.Recorder, segs []twoPin) (int, error) {
	g := r.grid
	// Register the negotiation counters up front so a clean routing
	// (zero rounds) still exports them at zero.
	ripupIters := rec.Counter("route.ripup_iterations")
	reroutes := rec.Counter("route.reroutes")
	regionsTotal := rec.Counter("route.regions")
	boundaryTotal := rec.Counter("route.boundary_nets")
	roundOverflow := rec.Histogram("route.round_overflow", overflowBounds)
	regionSize := rec.Histogram("route.region_segments", regionSegBounds)
	_, ripSpan := rec.StartSpan(ctx, "route.ripup")
	all := gridRect{X0: 0, Y0: 0, X1: g.NX - 1, Y1: g.NY - 1}
	rounds := 0
	for iter := 0; iter < r.opts.RipupIterations; iter++ {
		if err := ctxErr(ctx); err != nil {
			ripSpan.End(err)
			return rounds, err
		}
		overflow := g.TotalOverflow()
		if overflow == 0 {
			break
		}
		// Freeze the failing set against the start-of-round state. With
		// an ECO overflow floor, residual baseline congestion does not
		// fail a segment — only overflow the edit introduced does.
		var fail []int
		var terr []gridRect
		for i := range segs {
			if r.eligible != nil && !r.eligible[i] {
				continue
			}
			for _, e := range segs[i].path {
				if ov := g.overflowOf(e); ov > 0 && ov > r.overflowFloor(e) {
					fail = append(fail, i)
					terr = append(terr, g.territory(segs[i].a, segs[i].b))
					break
				}
			}
		}
		if len(fail) == 0 {
			break
		}
		rounds++
		roundOverflow.Observe(float64(overflow))
		ripupIters.Add(1)
		r.bumpHistory()
		plan := partitionRegions(fail, terr, all)
		regionsTotal.Add(int64(len(plan.Regions)))
		boundaryTotal.Add(int64(plan.boundaryCount()))
		for _, reg := range plan.Regions {
			regionSize.Observe(float64(len(reg)))
		}
		// runBuckets fans a set of edge-disjoint segment lists across
		// the worker pool, each list routed serially in ascending order.
		runBuckets := func(buckets [][]int) error {
			return par.ForEach(ctx, r.opts.Workers, len(buckets), func(bi int) error {
				s := r.scratch.Get().(*mazeScratch)
				defer r.scratch.Put(s)
				check := cancelChecker{ctx: ctx}
				for _, i := range buckets[bi] {
					if err := check.tick(); err != nil {
						return err
					}
					r.reroute(s, &segs[i])
				}
				return nil
			})
		}
		if err := runBuckets(plan.Regions); err != nil {
			err = fmt.Errorf("route: canceled: %w", err)
			ripSpan.End(err)
			return rounds, err
		}
		// Boundary buckets: deepest level first, each level's buckets
		// concurrent, seeing everything inside their rectangles settled.
		for d := len(plan.BoundaryLevels) - 1; d >= 0; d-- {
			if err := runBuckets(plan.BoundaryLevels[d]); err != nil {
				err = fmt.Errorf("route: canceled: %w", err)
				ripSpan.End(err)
				return rounds, err
			}
		}
		reroutes.Add(int64(len(fail)))
	}
	ripSpan.End(nil)
	return rounds, nil
}

// reroute rips up one segment's usage and maze-routes it against the
// current congestion.
func (r *router) reroute(s *mazeScratch, sg *twoPin) {
	for _, e := range sg.path {
		r.grid.addUsage(e, -1)
	}
	sg.path = r.mazeRoute(s, sg.a, sg.b)
	for _, e := range sg.path {
		r.grid.addUsage(e, 1)
	}
}

// recordRouteMetrics fills the router's observability signals: the
// per-gcell congestion histogram (the paper's Figure 3 decision
// input), the net half-perimeter wirelength distribution, and the
// outcome counters. Runs serially after the collect pass, so every
// observation order — and therefore every histogram min/max — is
// deterministic regardless of the routing phases' worker counts.
func recordRouteMetrics(rec *obs.Recorder, nl *place.Netlist, pl *place.Placement, g *Grid, res *Result) {
	ch := rec.Histogram("route.congestion", congestionBounds)
	for _, row := range g.CongestionMap() {
		for _, v := range row {
			ch.Observe(v)
		}
	}
	hh := rec.Histogram("route.net_hpwl_um", hpwlBounds)
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		if n.Degree() < 2 {
			continue
		}
		first := true
		var box geom.Rect
		grow := func(p geom.Point) {
			if first {
				box = geom.Rect{Min: p, Max: p}
				first = false
				return
			}
			box = box.Union(geom.Rect{Min: p, Max: p})
		}
		for _, c := range n.Cells {
			grow(pl.Pos[c])
		}
		for _, p := range n.Pads {
			grow(p)
		}
		hh.Observe(box.HalfPerimeter())
	}
	rec.Add("route.overflow_tracks", int64(res.Violations))
	rec.Add("route.overflow_edges", int64(res.OverflowEdges))
	rec.Add("route.failed_connections", int64(res.FailedConnections))
}

// netSpansRegions reports whether net ni has pins (cells or pads) in
// more than one die region.
func netSpansRegions(nl *place.Netlist, pl *place.Placement, ni int, regions []geom.Rect) bool {
	first := -1
	check := func(p geom.Point) bool {
		r := regionIndexOf(p, regions)
		if first < 0 {
			first = r
			return false
		}
		return r != first
	}
	for _, c := range nl.Nets[ni].Cells {
		if check(pl.Pos[c]) {
			return true
		}
	}
	for _, p := range nl.Nets[ni].Pads {
		if check(p) {
			return true
		}
	}
	return false
}

// cellDensity bins cell area into gcells, normalized by gcell area.
func cellDensity(nl *place.Netlist, pl *place.Placement, layout place.Layout, opts Options) ([][]float64, error) {
	nx := int(math.Ceil(layout.Die.W() / opts.GCellSize))
	ny := int(math.Ceil(layout.Die.H() / opts.GCellSize))
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("route: degenerate grid %dx%d", nx, ny)
	}
	cw := layout.Die.W() / float64(nx)
	ch := layout.Die.H() / float64(ny)
	m := make([][]float64, ny)
	for y := range m {
		m[y] = make([]float64, nx)
	}
	gArea := cw * ch
	for c := 0; c < nl.NumCells(); c++ {
		x := int((pl.Pos[c].X - layout.Die.Min.X) / cw)
		y := int((pl.Pos[c].Y - layout.Die.Min.Y) / ch)
		if x < 0 {
			x = 0
		}
		if x >= nx {
			x = nx - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= ny {
			y = ny - 1
		}
		m[y][x] += nl.Widths[c] * layout.RowHeight / gArea
	}
	return m, nil
}

// terminalCells maps a net's endpoints to distinct gcells, appending
// into buf (pass buf[:0] to reuse its backing array). Dedup is a
// linear scan: nets have a handful of terminals, and avoiding a map
// per net is a measured win at paper scale.
func terminalCells(g *Grid, nl *place.Netlist, pl *place.Placement, ni int, buf [][2]int) [][2]int {
	out := buf
	add := func(p geom.Point) {
		x, y := g.GCellOf(p)
		for _, k := range out {
			if k[0] == x && k[1] == y {
				return
			}
		}
		out = append(out, [2]int{x, y})
	}
	for _, c := range nl.Nets[ni].Cells {
		add(pl.Pos[c])
	}
	for _, p := range nl.Nets[ni].Pads {
		add(p)
	}
	return out
}

// mstPairs returns the edges of a Manhattan-distance minimum spanning
// tree over the terminals (Prim's algorithm).
func mstPairs(g *Grid, pts [][2]int) [][2][2]int {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]int, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = abs(pts[i][0]-pts[0][0]) + abs(pts[i][1]-pts[0][1])
		from[i] = 0
	}
	var out [][2][2]int
	for added := 1; added < n; added++ {
		best, bestD := -1, math.MaxInt32
		for i := range pts {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		out = append(out, [2][2]int{pts[from[best]], pts[best]})
		for i := range pts {
			if inTree[i] {
				continue
			}
			d := abs(pts[i][0]-pts[best][0]) + abs(pts[i][1]-pts[best][1])
			if d < dist[i] {
				dist[i] = d
				from[i] = best
			}
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minmax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// router carries the routing state shared by all workers: the grid,
// the options, and the maze-scratch pool. The grid is only ever
// mutated from one goroutine at a time per edge (regions are
// edge-disjoint; serial phases own the whole grid), so the router
// itself needs no locks.
type router struct {
	grid *Grid
	opts Options
	// squareCost short-circuits math.Pow on the hot path for the
	// default CongestionExponent of 2 (math.Pow(x, 2) computes exactly
	// x*x, so the results are bit-identical).
	squareCost bool
	// floorGrid, when set (incremental ECO rerouting), is the previous
	// routing's settled grid: overflow up to its level is treated as
	// already-negotiated residue, and only overflow EXCEEDING it
	// triggers rip-up. Without it a fast ECO on a design whose baseline
	// negotiation ended with residual congestion would re-fight that
	// entire congestion every time, globally.
	floorGrid *Grid
	// eligible, when set (incremental ECO rerouting), restricts rip-up
	// to the marked segments — the edited nets. On a saturated design
	// an edited net has no overflow-free path, so its +1 through a hot
	// edge would otherwise drag that edge's every co-user into the
	// negotiation and cascade across the die; instead the kept nets'
	// paths are preserved verbatim and the marginal overflow is
	// reported honestly in the Result.
	eligible []bool
	// scratch pools the per-worker maze-routing buffers.
	scratch sync.Pool
}

// overflowFloor is the overflow level on e the negotiation accepts
// without ripping: zero normally, the baseline's residue under ECO.
func (r *router) overflowFloor(e edge) float64 {
	if r.floorGrid == nil {
		return 0
	}
	if ov := r.floorGrid.overflowOf(e); ov > 0 {
		return ov
	}
	return 0
}

func newRouter(g *Grid, opts Options) *router {
	r := &router{
		grid:       g,
		opts:       opts,
		squareCost: opts.CongestionExponent == 2,
	}
	r.scratch.New = func() any { return &mazeScratch{} }
	return r
}

// edgeCost is the congestion-aware cost of pushing one more track
// through the edge.
func (r *router) edgeCost(e edge) float64 {
	g := r.grid
	var usage, cap2, hist float64
	if e.horizontal {
		usage, cap2, hist = g.usageH[e.y][e.x], g.capH[e.y][e.x], g.histH[e.y][e.x]
	} else {
		usage, cap2, hist = g.usageV[e.y][e.x], g.capV[e.y][e.x], g.histV[e.y][e.x]
	}
	cost := 1.0 + hist
	if cap2 <= 0 {
		return cost + 64
	}
	over := (usage + 1) / cap2
	if over > 0.8 {
		if r.squareCost {
			d := over - 0.8
			cost += d * d * 32
		} else {
			cost += math.Pow(over-0.8, r.opts.CongestionExponent) * 32
		}
	}
	return cost
}

// bumpHistory raises the history cost of currently overflowed edges,
// the negotiated-congestion mechanism that pushes reroutes away from
// hot spots.
func (r *router) bumpHistory() {
	g := r.grid
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if g.usageH[y][x] > g.capH[y][x] {
				g.histH[y][x] += 2
			}
			if g.usageV[y][x] > g.capV[y][x] {
				g.histV[y][x] += 2
			}
		}
	}
}

// patternRoute routes a two-pin segment with the cheaper of the two
// L-shapes (or a straight line when aligned).
func (r *router) patternRoute(a, b [2]int) []edge {
	p1 := r.lPath(a, b, true)
	if a[0] == b[0] || a[1] == b[1] {
		return p1
	}
	p2 := r.lPath(a, b, false)
	if r.pathCost(p2) < r.pathCost(p1) {
		return p2
	}
	return p1
}

func (r *router) pathCost(p []edge) float64 {
	c := 0.0
	for _, e := range p {
		c += r.edgeCost(e)
	}
	return c
}

// lPath builds the L route from a to b, horizontal-first or
// vertical-first.
func (r *router) lPath(a, b [2]int, horizontalFirst bool) []edge {
	p := make([]edge, 0, abs(a[0]-b[0])+abs(a[1]-b[1]))
	hseg := func(y, x0, x1 int) {
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		for x := x0; x < x1; x++ {
			p = append(p, edge{x: x, y: y, horizontal: true})
		}
	}
	vseg := func(x, y0, y1 int) {
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		for y := y0; y < y1; y++ {
			p = append(p, edge{x: x, y: y, horizontal: false})
		}
	}
	if horizontalFirst {
		hseg(a[1], a[0], b[0])
		vseg(b[0], a[1], b[1])
	} else {
		vseg(a[0], a[1], b[1])
		hseg(b[1], a[0], b[0])
	}
	return p
}

// mazeHalo is the detour margin in gcells around a segment's terminal
// bounding box. Real global routers confine nets near their bounding
// box (timing and via budgets); an unbounded maze would launder
// structural congestion into die-wide detours. The region partitioner
// relies on it: a segment's territory (regions.go) is its terminal
// bounding box expanded by exactly this halo.
const mazeHalo = 2

// pqItem is one entry of the maze router's binary min-heap. node
// indexes the box-local Dijkstra arrays.
type pqItem struct {
	node int32
	cost float64
}

// mazeScratch is the reusable maze-routing state: the box-local
// Dijkstra arrays and the frontier heap. One lives in each concurrent
// region worker (pooled on the router) and one in the serial phases;
// reusing them removes the per-call allocations that used to dominate
// reroute time at scale. The buffers grow to the largest detour box
// seen and stay there.
type mazeScratch struct {
	dist []float64
	prev []int32
	heap []pqItem
}

// ensure sizes the arrays for an n-cell detour box.
func (s *mazeScratch) ensure(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]int32, n)
	}
	s.dist = s.dist[:n]
	s.prev = s.prev[:n]
	s.heap = s.heap[:0]
}

// heapPush inserts an item into the min-heap.
func heapPush(q *[]pqItem, it pqItem) {
	h := append(*q, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].cost <= h[i].cost {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*q = h
}

// heapPop removes and returns the min item.
func heapPop(q *[]pqItem) pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].cost < h[small].cost {
			small = l
		}
		if rr < n && h[rr].cost < h[small].cost {
			small = rr
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*q = h
	return top
}

// mazeRoute finds the min-cost path from a to b with Dijkstra over the
// detour box (the terminal bounding box expanded by mazeHalo). All
// search state is box-local and lives in the scratch buffers, so a
// reroute costs O(box) rather than O(grid).
func (r *router) mazeRoute(s *mazeScratch, a, b [2]int) []edge {
	g := r.grid
	x0, x1 := minmax(a[0], b[0])
	y0, y1 := minmax(a[1], b[1])
	x0, x1 = clampInt(x0-mazeHalo, 0, g.NX-1), clampInt(x1+mazeHalo, 0, g.NX-1)
	y0, y1 = clampInt(y0-mazeHalo, 0, g.NY-1), clampInt(y1+mazeHalo, 0, g.NY-1)
	w := x1 - x0 + 1
	n := w * (y1 - y0 + 1)
	s.ensure(n)
	dist, prev := s.dist, s.prev
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	id := func(x, y int) int32 { return int32((y-y0)*w + (x - x0)) }
	start, goal := id(a[0], a[1]), id(b[0], b[1])
	dist[start] = 0
	heapPush(&s.heap, pqItem{node: start})
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		if it.cost > dist[it.node] {
			continue
		}
		if it.node == goal {
			break
		}
		li := int(it.node)
		x, y := x0+li%w, y0+li/w
		try := func(nx, ny int, e edge) {
			nd := it.cost + r.edgeCost(e)
			ni := id(nx, ny)
			if nd < dist[ni] {
				dist[ni] = nd
				prev[ni] = it.node
				heapPush(&s.heap, pqItem{node: ni, cost: nd})
			}
		}
		if x < x1 {
			try(x+1, y, edge{x: x, y: y, horizontal: true})
		}
		if x > x0 {
			try(x-1, y, edge{x: x - 1, y: y, horizontal: true})
		}
		if y < y1 {
			try(x, y+1, edge{x: x, y: y, horizontal: false})
		}
		if y > y0 {
			try(x, y-1, edge{x: x, y: y - 1, horizontal: false})
		}
	}
	// Reconstruct (capacity hint: the no-detour distance).
	path := make([]edge, 0, abs(a[0]-b[0])+abs(a[1]-b[1]))
	for v := goal; v != start && prev[v] >= 0; v = prev[v] {
		u := prev[v]
		ux, uy := x0+int(u)%w, y0+int(u)/w
		vx, vy := x0+int(v)%w, y0+int(v)/w
		switch {
		case uy == vy && vx == ux+1:
			path = append(path, edge{x: ux, y: uy, horizontal: true})
		case uy == vy && vx == ux-1:
			path = append(path, edge{x: vx, y: uy, horizontal: true})
		case ux == vx && vy == uy+1:
			path = append(path, edge{x: ux, y: uy, horizontal: false})
		default:
			path = append(path, edge{x: ux, y: vy, horizontal: false})
		}
	}
	if len(path) == 0 && start != goal {
		// Unreachable (cannot happen on a connected grid, but stay
		// safe): fall back to a pattern route.
		return r.patternRoute(a, b)
	}
	return path
}

package route

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"casyn/internal/geom"
	"casyn/internal/obs"
	"casyn/internal/par"
	"casyn/internal/place"
)

// Histogram bucket bounds for the router's observability metrics. The
// congestion bounds bracket the interesting region around capacity
// (1.0); the HPWL bounds are logarithmic in µm.
var (
	congestionBounds = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1, 1.25, 1.5, 2}
	hpwlBounds       = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
)

// Result is a completed global routing.
type Result struct {
	Grid *Grid
	// Violations is the total track overflow (the "routing violations"
	// column of the paper's tables).
	Violations int
	// OverflowEdges counts distinct over-capacity edges.
	OverflowEdges int
	// FailedConnections counts two-pin route segments whose final path
	// crosses at least one over-capacity edge — the closest analogue
	// of a detailed router's unroutable-connection count.
	FailedConnections int
	// WireLength is the total routed wirelength in µm.
	WireLength float64
	// NetLength is the routed length per net (µm), indexed like
	// nl.Nets; STA uses it for wire RC.
	NetLength []float64
	// MaxCongestion is the worst edge usage/capacity ratio.
	MaxCongestion float64
}

// Routable reports whether the layout routed without violations: no
// connection crosses an over-capacity edge.
func (r *Result) Routable() bool { return r.FailedConnections == 0 && r.Violations == 0 }

// RouteNetlist globally routes the placed netlist. Pads participate as
// ordinary terminals. The cell-density capacity derate is computed
// from the placement itself.
//
// Cancellation is cooperative: the initial pattern-routing sweep and
// every rip-up/reroute iteration check ctx periodically and return a
// wrapped ctx error promptly when it is canceled or its deadline
// passes.
func RouteNetlist(ctx context.Context, nl *place.Netlist, pl *place.Placement, layout place.Layout, opts Options) (*Result, error) {
	if len(pl.Pos) != nl.NumCells() {
		return nil, fmt.Errorf("route: placement for %d cells, netlist has %d", len(pl.Pos), nl.NumCells())
	}
	opts.defaults(layout)
	density, err := cellDensity(nl, pl, layout, opts)
	if err != nil {
		return nil, err
	}
	g, err := NewGrid(layout, opts, density)
	if err != nil {
		return nil, err
	}
	r := &router{grid: g, opts: opts}

	// Decompose every net into two-pin segments over gcell terminals.
	type segment struct {
		net  int
		a, b [2]int
		path []edge
	}
	var segs []segment
	for ni := range nl.Nets {
		pts := terminalCells(g, nl, pl, ni)
		if len(pts) < 2 {
			continue
		}
		for _, pr := range mstPairs(g, pts) {
			segs = append(segs, segment{net: ni, a: pr[0], b: pr[1]})
		}
	}
	// Longer segments first: they have the least routing flexibility.
	sort.SliceStable(segs, func(i, j int) bool {
		di := abs(segs[i].a[0]-segs[i].b[0]) + abs(segs[i].a[1]-segs[i].b[1])
		dj := abs(segs[j].a[0]-segs[j].b[0]) + abs(segs[j].a[1]-segs[j].b[1])
		return di > dj
	})

	canceled := func() error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("route: canceled: %w", cerr)
		}
		return nil
	}

	rec := obs.From(ctx)
	rec.Add("route.nets", int64(len(nl.Nets)))
	rec.Add("route.segments", int64(len(segs)))
	_, fpSpan := rec.StartSpan(ctx, "route.first_pass")

	// Initial pattern routing, in fixed batches. Within a batch every
	// segment is routed against the immutable congestion state frozen
	// at the batch boundary, so the segments are independent and fan
	// out across opts.Workers goroutines; their usage is then applied
	// in segment order before the next batch sees the grid. Batch
	// boundaries depend only on the segment indices — never on the
	// worker count — so the routing is byte-identical for any Workers
	// value, and each batch boundary is a cancellation point.
	const firstPassBatch = 256
	for start := 0; start < len(segs); start += firstPassBatch {
		if err := canceled(); err != nil {
			fpSpan.End(err)
			return nil, err
		}
		end := start + firstPassBatch
		if end > len(segs) {
			end = len(segs)
		}
		batch := segs[start:end]
		if err := par.ForEach(ctx, opts.Workers, len(batch), func(j int) error {
			batch[j].path = r.patternRoute(batch[j].a, batch[j].b)
			return nil
		}); err != nil {
			err = fmt.Errorf("route: canceled: %w", err)
			fpSpan.End(err)
			return nil, err
		}
		for j := range batch {
			for _, e := range batch[j].path {
				g.addUsage(e, 1)
			}
		}
	}
	fpSpan.End(nil)
	// Rip-up and reroute segments crossing overflowed edges. This loop
	// stays serial: negotiated congestion is inherently sequential
	// (every reroute must see the previous one's usage), and it touches
	// only the minority of segments crossing hot spots.
	ripupIters := rec.Counter("route.ripup_iterations")
	reroutes := rec.Counter("route.reroutes")
	_, ripSpan := rec.StartSpan(ctx, "route.ripup")
	for iter := 0; iter < opts.RipupIterations; iter++ {
		if err := canceled(); err != nil {
			ripSpan.End(err)
			return nil, err
		}
		if g.TotalOverflow() == 0 {
			break
		}
		ripupIters.Add(1)
		r.bumpHistory()
		rerouted := 0
		for i := range segs {
			bad := false
			for _, e := range segs[i].path {
				if g.overflowOf(e) > 0 {
					bad = true
					break
				}
			}
			if !bad {
				continue
			}
			if rerouted%64 == 63 {
				if err := canceled(); err != nil {
					ripSpan.End(err)
					return nil, err
				}
			}
			for _, e := range segs[i].path {
				g.addUsage(e, -1)
			}
			segs[i].path = r.mazeRoute(segs[i].a, segs[i].b)
			for _, e := range segs[i].path {
				g.addUsage(e, 1)
			}
			rerouted++
		}
		reroutes.Add(int64(rerouted))
		if rerouted == 0 {
			break
		}
	}
	ripSpan.End(nil)

	// Collect results.
	res := &Result{Grid: g, NetLength: make([]float64, len(nl.Nets))}
	for i := range segs {
		l := 0.0
		failed := false
		for _, e := range segs[i].path {
			if e.horizontal {
				l += g.CellW
			} else {
				l += g.CellH
			}
			if g.overflowOf(e) > 0 {
				failed = true
			}
		}
		if failed {
			res.FailedConnections++
		}
		res.NetLength[segs[i].net] += l
		res.WireLength += l
	}
	res.Violations = g.TotalOverflow()
	res.MaxCongestion = g.MaxCongestion()
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if g.usageH[y][x] > g.capH[y][x] {
				res.OverflowEdges++
			}
			if g.usageV[y][x] > g.capV[y][x] {
				res.OverflowEdges++
			}
		}
	}
	if rec != nil {
		recordRouteMetrics(rec, nl, pl, g, res)
	}
	return res, nil
}

// recordRouteMetrics fills the router's observability signals: the
// per-gcell congestion histogram (the paper's Figure 3 decision
// input), the net half-perimeter wirelength distribution, and the
// outcome counters. Runs serially after the collect pass, so every
// observation order — and therefore every histogram min/max — is
// deterministic regardless of the first pass's worker count.
func recordRouteMetrics(rec *obs.Recorder, nl *place.Netlist, pl *place.Placement, g *Grid, res *Result) {
	ch := rec.Histogram("route.congestion", congestionBounds)
	for _, row := range g.CongestionMap() {
		for _, v := range row {
			ch.Observe(v)
		}
	}
	hh := rec.Histogram("route.net_hpwl_um", hpwlBounds)
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		if n.Degree() < 2 {
			continue
		}
		first := true
		var box geom.Rect
		grow := func(p geom.Point) {
			if first {
				box = geom.Rect{Min: p, Max: p}
				first = false
				return
			}
			box = box.Union(geom.Rect{Min: p, Max: p})
		}
		for _, c := range n.Cells {
			grow(pl.Pos[c])
		}
		for _, p := range n.Pads {
			grow(p)
		}
		hh.Observe(box.HalfPerimeter())
	}
	rec.Add("route.overflow_tracks", int64(res.Violations))
	rec.Add("route.overflow_edges", int64(res.OverflowEdges))
	rec.Add("route.failed_connections", int64(res.FailedConnections))
}

// cellDensity bins cell area into gcells, normalized by gcell area.
func cellDensity(nl *place.Netlist, pl *place.Placement, layout place.Layout, opts Options) ([][]float64, error) {
	nx := int(math.Ceil(layout.Die.W() / opts.GCellSize))
	ny := int(math.Ceil(layout.Die.H() / opts.GCellSize))
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("route: degenerate grid %dx%d", nx, ny)
	}
	cw := layout.Die.W() / float64(nx)
	ch := layout.Die.H() / float64(ny)
	m := make([][]float64, ny)
	for y := range m {
		m[y] = make([]float64, nx)
	}
	gArea := cw * ch
	for c := 0; c < nl.NumCells(); c++ {
		x := int((pl.Pos[c].X - layout.Die.Min.X) / cw)
		y := int((pl.Pos[c].Y - layout.Die.Min.Y) / ch)
		if x < 0 {
			x = 0
		}
		if x >= nx {
			x = nx - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= ny {
			y = ny - 1
		}
		m[y][x] += nl.Widths[c] * layout.RowHeight / gArea
	}
	return m, nil
}

// terminalCells maps a net's endpoints to distinct gcells.
func terminalCells(g *Grid, nl *place.Netlist, pl *place.Placement, ni int) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	add := func(p geom.Point) {
		x, y := g.GCellOf(p)
		k := [2]int{x, y}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, c := range nl.Nets[ni].Cells {
		add(pl.Pos[c])
	}
	for _, p := range nl.Nets[ni].Pads {
		add(p)
	}
	return out
}

// mstPairs returns the edges of a Manhattan-distance minimum spanning
// tree over the terminals (Prim's algorithm).
func mstPairs(g *Grid, pts [][2]int) [][2][2]int {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]int, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = abs(pts[i][0]-pts[0][0]) + abs(pts[i][1]-pts[0][1])
		from[i] = 0
	}
	var out [][2][2]int
	for added := 1; added < n; added++ {
		best, bestD := -1, math.MaxInt32
		for i := range pts {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		out = append(out, [2][2]int{pts[from[best]], pts[best]})
		for i := range pts {
			if inTree[i] {
				continue
			}
			d := abs(pts[i][0]-pts[best][0]) + abs(pts[i][1]-pts[best][1])
			if d < dist[i] {
				dist[i] = d
				from[i] = best
			}
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minmax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// router carries the mutable routing state.
type router struct {
	grid *Grid
	opts Options
}

// edgeCost is the congestion-aware cost of pushing one more track
// through the edge.
func (r *router) edgeCost(e edge) float64 {
	g := r.grid
	var usage, cap2, hist float64
	if e.horizontal {
		usage, cap2, hist = g.usageH[e.y][e.x], g.capH[e.y][e.x], g.histH[e.y][e.x]
	} else {
		usage, cap2, hist = g.usageV[e.y][e.x], g.capV[e.y][e.x], g.histV[e.y][e.x]
	}
	cost := 1.0 + hist
	if cap2 <= 0 {
		return cost + 64
	}
	over := (usage + 1) / cap2
	if over > 0.8 {
		cost += math.Pow(over-0.8, r.opts.CongestionExponent) * 32
	}
	return cost
}

// bumpHistory raises the history cost of currently overflowed edges,
// the negotiated-congestion mechanism that pushes reroutes away from
// hot spots.
func (r *router) bumpHistory() {
	g := r.grid
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if g.usageH[y][x] > g.capH[y][x] {
				g.histH[y][x] += 2
			}
			if g.usageV[y][x] > g.capV[y][x] {
				g.histV[y][x] += 2
			}
		}
	}
}

// patternRoute routes a two-pin segment with the cheaper of the two
// L-shapes (or a straight line when aligned).
func (r *router) patternRoute(a, b [2]int) []edge {
	p1 := r.lPath(a, b, true)
	if a[0] == b[0] || a[1] == b[1] {
		return p1
	}
	p2 := r.lPath(a, b, false)
	if r.pathCost(p2) < r.pathCost(p1) {
		return p2
	}
	return p1
}

func (r *router) pathCost(p []edge) float64 {
	c := 0.0
	for _, e := range p {
		c += r.edgeCost(e)
	}
	return c
}

// lPath builds the L route from a to b, horizontal-first or
// vertical-first.
func (r *router) lPath(a, b [2]int, horizontalFirst bool) []edge {
	var p []edge
	hseg := func(y, x0, x1 int) {
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		for x := x0; x < x1; x++ {
			p = append(p, edge{x: x, y: y, horizontal: true})
		}
	}
	vseg := func(x, y0, y1 int) {
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		for y := y0; y < y1; y++ {
			p = append(p, edge{x: x, y: y, horizontal: false})
		}
	}
	if horizontalFirst {
		hseg(a[1], a[0], b[0])
		vseg(b[0], a[1], b[1])
	} else {
		vseg(a[0], a[1], b[1])
		hseg(b[1], a[0], b[0])
	}
	return p
}

// mazeRoute finds the min-cost path with Dijkstra over the grid.
type pqItem struct {
	node int
	cost float64
}
type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

func (r *router) mazeRoute(a, b [2]int) []edge {
	g := r.grid
	n := g.NX * g.NY
	id := func(x, y int) int { return y*g.NX + x }
	// Detour region: the terminals' bounding box expanded by a small
	// halo. Real global routers confine nets near their bounding box
	// (timing and via budgets); an unbounded maze would launder
	// structural congestion into die-wide detours.
	const halo = 2
	x0, x1 := minmax(a[0], b[0])
	y0, y1 := minmax(a[1], b[1])
	x0, x1 = clampInt(x0-halo, 0, g.NX-1), clampInt(x1+halo, 0, g.NX-1)
	y0, y1 = clampInt(y0-halo, 0, g.NY-1), clampInt(y1+halo, 0, g.NY-1)
	inBox := func(x, y int) bool { return x >= x0 && x <= x1 && y >= y0 && y <= y1 }
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	start, goal := id(a[0], a[1]), id(b[0], b[1])
	dist[start] = 0
	q := &pq{{node: start}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.cost > dist[it.node] {
			continue
		}
		if it.node == goal {
			break
		}
		x, y := it.node%g.NX, it.node/g.NX
		try := func(nx, ny int, e edge) {
			if !inBox(nx, ny) {
				return
			}
			nd := it.cost + r.edgeCost(e)
			ni := id(nx, ny)
			if nd < dist[ni] {
				dist[ni] = nd
				prev[ni] = it.node
				heap.Push(q, pqItem{node: ni, cost: nd})
			}
		}
		if x+1 < g.NX {
			try(x+1, y, edge{x: x, y: y, horizontal: true})
		}
		if x > 0 {
			try(x-1, y, edge{x: x - 1, y: y, horizontal: true})
		}
		if y+1 < g.NY {
			try(x, y+1, edge{x: x, y: y, horizontal: false})
		}
		if y > 0 {
			try(x, y-1, edge{x: x, y: y - 1, horizontal: false})
		}
	}
	// Reconstruct.
	var path []edge
	for v := goal; v != start && prev[v] >= 0; v = prev[v] {
		u := prev[v]
		ux, uy := u%g.NX, u/g.NX
		vx, vy := v%g.NX, v/g.NX
		switch {
		case uy == vy && vx == ux+1:
			path = append(path, edge{x: ux, y: uy, horizontal: true})
		case uy == vy && vx == ux-1:
			path = append(path, edge{x: vx, y: uy, horizontal: true})
		case ux == vx && vy == uy+1:
			path = append(path, edge{x: ux, y: uy, horizontal: false})
		default:
			path = append(path, edge{x: ux, y: vy, horizontal: false})
		}
	}
	if len(path) == 0 && start != goal {
		// Unreachable (cannot happen on a connected grid, but stay
		// safe): fall back to a pattern route.
		return r.patternRoute(a, b)
	}
	return path
}

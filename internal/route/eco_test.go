package route

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/place"
)

// ecoDesign builds a deterministic random multi-net design on the
// standard 200×100 test die. Nets are spatially local — each draws
// its 2–4 dedicated cells inside a small random box — so a single
// moved cell dirties only part of the grid and the territory-
// intersection invariant has clean nets to observe. Lightly loaded,
// so the post-ECO negotiation has nothing to do and the kept-path
// invariant is directly observable.
func ecoDesign(t *testing.T, nets int, seed int64) (*place.Netlist, *place.Placement, place.Layout) {
	t.Helper()
	layout := testLayout(t)
	rng := rand.New(rand.NewSource(seed))
	nl := &place.Netlist{}
	pl := &place.Placement{}
	for n := 0; n < nets; n++ {
		k := 2 + rng.Intn(3)
		cx := rng.Float64() * (layout.Die.W() - 30)
		cy := rng.Float64() * (layout.Die.H() - 20)
		var members []int
		for i := 0; i < k; i++ {
			c := len(nl.Widths)
			nl.Widths = append(nl.Widths, 2)
			p := geom.Pt(cx+rng.Float64()*30, cy+rng.Float64()*20)
			pl.Pos = append(pl.Pos, p)
			pl.Row = append(pl.Row, layout.RowOf(p.Y))
			members = append(members, c)
		}
		nl.Nets = append(nl.Nets, place.Net{Cells: members})
	}
	return nl, pl, layout
}

func ecoOpts() Options {
	// Generous capacity: the invariants below need a congestion-free
	// design so rip-up rounds stay at zero and kept paths are
	// observable verbatim.
	return Options{GCellSize: 10, RipupIterations: 4, CapacityScale: 4}
}

// usageFromPaths recomputes what the grid's edge usage must be from
// the captured segments' final paths.
func usageFromPaths(segs []twoPin) map[edge]float64 {
	u := make(map[edge]float64)
	for i := range segs {
		for _, e := range segs[i].path {
			u[e]++
		}
	}
	return u
}

// checkUsageMatchesPaths asserts invariant (2) of the RouteECO
// contract: the final grid usage exactly equals the sum of the final
// paths.
func checkUsageMatchesPaths(t *testing.T, st *State) {
	t.Helper()
	want := usageFromPaths(st.segs)
	g := st.grid
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			for _, hz := range []bool{true, false} {
				e := edge{x: x, y: y, horizontal: hz}
				got := g.usageV[y][x]
				if hz {
					got = g.usageH[y][x]
				}
				if math.Abs(got-want[e]) > 1e-9 {
					t.Fatalf("edge %+v: grid usage %g, paths sum to %g", e, got, want[e])
				}
			}
		}
	}
}

// TestRouteECOUnchangedReturnsPrevious: an unedited design is a no-op
// — RouteECO hands back the previous Result and State verbatim.
func TestRouteECOUnchangedReturnsPrevious(t *testing.T) {
	t.Parallel()
	nl, pl, layout := ecoDesign(t, 25, 3)
	ctx := context.Background()
	res, st, err := RouteNetlistState(ctx, nl, pl, layout, ecoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st.Result() != res {
		t.Fatal("State.Result does not return the captured result")
	}
	res2, st2, err := RouteECO(ctx, st, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res || st2 != st {
		t.Error("unchanged design did not return the previous Result/State verbatim")
	}
}

// TestRouteECOInvariants moves one cell and checks the three
// incremental-reroute guarantees: usage bookkeeping is exact, the
// result matches a full-route summary of consistency (violations
// from its own grid), and only nets whose territory intersects the
// dirtied region changed paths.
func TestRouteECOInvariants(t *testing.T) {
	t.Parallel()
	nl, pl, layout := ecoDesign(t, 25, 7)
	ctx := context.Background()
	res, st, err := RouteNetlistState(ctx, nl, pl, layout, ecoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RipupRounds != 0 {
		t.Fatalf("design congested (rounds=%d); the kept-path invariant needs a clean baseline", res.RipupRounds)
	}
	checkUsageMatchesPaths(t, st)

	// Nudge one cell across a gcell boundary.
	moved := 11
	pl2 := &place.Placement{Pos: append([]geom.Point(nil), pl.Pos...), Row: append([]int(nil), pl.Row...)}
	pl2.Pos[moved] = pl.Pos[moved].Add(geom.Pt(15, 10))
	if out := layout.Die.Max; pl2.Pos[moved].X > out.X || pl2.Pos[moved].Y > out.Y {
		pl2.Pos[moved] = geom.Pt(pl.Pos[moved].X-15, pl.Pos[moved].Y-10)
	}
	pl2.Row[moved] = layout.RowOf(pl2.Pos[moved].Y)

	res2, st2, err := RouteECO(ctx, st, nl, pl2)
	if err != nil {
		t.Fatal(err)
	}
	if res2 == res {
		t.Fatal("a moved cell must produce a new result")
	}
	checkUsageMatchesPaths(t, st2)

	// Independent dirty region: capacity shifts plus old+new
	// territories of every net whose terminals changed.
	g2 := st2.grid
	dirty, anyDirty := capacityDiffRect(st.grid, g2)
	changed := make(map[int]bool)
	for ni := range nl.Nets {
		if equalTerms(st.netTerms[ni], st2.netTerms[ni]) {
			continue
		}
		changed[ni] = true
		for _, terms := range [][][2]int{st.netTerms[ni], st2.netTerms[ni]} {
			if len(terms) == 0 {
				continue
			}
			tr := termTerritory(g2, terms)
			if !anyDirty {
				dirty, anyDirty = tr, true
			} else {
				dirty = dirty.union(tr)
			}
		}
	}
	if !anyDirty {
		t.Fatal("moving a cell across a gcell boundary dirtied nothing; pick a bigger nudge")
	}

	// Invariant (3): with zero rip-up rounds, a net outside the dirty
	// region keeps its exact previous path.
	if res2.RipupRounds != 0 {
		t.Fatalf("post-ECO negotiation ripped (rounds=%d); capacity scale too low for the invariant", res2.RipupRounds)
	}
	pathOf := func(st *State, ni int) [][]edge {
		var out [][]edge
		for _, si := range st.segsOfNet[ni] {
			out = append(out, st.segs[si].path)
		}
		return out
	}
	cleanNets, changedPaths := 0, 0
	for ni := range nl.Nets {
		if changed[ni] || len(st2.netTerms[ni]) < 2 {
			continue
		}
		if termTerritory(g2, st2.netTerms[ni]).intersects(dirty) {
			continue
		}
		cleanNets++
		oldP, newP := pathOf(st, ni), pathOf(st2, ni)
		if len(oldP) != len(newP) {
			t.Fatalf("net %d outside the dirty region changed segment count", ni)
		}
		for k := range oldP {
			if len(oldP[k]) != len(newP[k]) {
				changedPaths++
				break
			}
			same := true
			for j := range oldP[k] {
				if oldP[k][j] != newP[k][j] {
					same = false
					break
				}
			}
			if !same {
				changedPaths++
				break
			}
		}
	}
	if cleanNets == 0 {
		t.Fatal("every net intersected the dirty region; the invariant was never exercised")
	}
	if changedPaths != 0 {
		t.Errorf("%d of %d nets outside the dirty region changed paths", changedPaths, cleanNets)
	}
}

// TestRouteECOFullFallback: a net-count change is beyond index-based
// diffing — RouteECO must fall back to a full route whose result
// matches a from-scratch RouteNetlistState bit for bit.
func TestRouteECOFullFallback(t *testing.T) {
	t.Parallel()
	nl, pl, layout := ecoDesign(t, 25, 11)
	ctx := context.Background()
	_, st, err := RouteNetlistState(ctx, nl, pl, layout, ecoOpts())
	if err != nil {
		t.Fatal(err)
	}
	nl2 := &place.Netlist{Widths: nl.Widths, Nets: append(append([]place.Net(nil), nl.Nets...), place.Net{Cells: []int{0, 39}})}
	res2, st2, err := RouteECO(ctx, st, nl2, pl)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := RouteNetlistState(ctx, nl2, pl, layout, ecoOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res2.WireLength != ref.WireLength || res2.Violations != ref.Violations ||
		res2.FailedConnections != ref.FailedConnections || len(res2.NetLength) != len(ref.NetLength) {
		t.Errorf("fallback result differs from from-scratch route: wl %g vs %g, viol %d vs %d",
			res2.WireLength, ref.WireLength, res2.Violations, ref.Violations)
	}
	for ni := range ref.NetLength {
		if res2.NetLength[ni] != ref.NetLength[ni] {
			t.Fatalf("net %d length %g vs %g", ni, res2.NetLength[ni], ref.NetLength[ni])
		}
	}
	checkUsageMatchesPaths(t, st2)
}

// TestRouteECONilState: a missing baseline is an error, not a crash.
func TestRouteECONilState(t *testing.T) {
	t.Parallel()
	nl, pl, _ := ecoDesign(t, 4, 13)
	if _, _, err := RouteECO(context.Background(), nil, nl, pl); err == nil {
		t.Error("nil state did not error")
	}
}

package route

import (
	"math/rand"
	"testing"
)

func rectsDisjoint(a, b gridRect) bool {
	return a.X1 < b.X0 || b.X1 < a.X0 || a.Y1 < b.Y0 || b.Y1 < a.Y0
}

// checkPlan asserts the structural invariants every region plan must
// satisfy: each failing segment lands in exactly one region or one
// boundary bucket, every territory is contained in its region's (or
// bucket's node) rectangle, region rectangles are pairwise
// cell-disjoint, and so are the node rectangles within one boundary
// level. Cell-disjointness implies edge-disjointness on the grid.
func checkPlan(t *testing.T, plan regionPlan, fail []int, terr []gridRect) {
	t.Helper()
	terrOf := make(map[int]gridRect, len(fail))
	for k, it := range fail {
		terrOf[it] = terr[k]
	}
	placed := map[int]int{}
	for ri, items := range plan.Regions {
		for _, it := range items {
			placed[it]++
			if !plan.Rects[ri].contains(terrOf[it]) {
				t.Errorf("region %d rect %+v does not contain territory %+v of segment %d",
					ri, plan.Rects[ri], terrOf[it], it)
			}
		}
	}
	for d, level := range plan.BoundaryLevels {
		for bi, bucket := range level {
			for _, it := range bucket {
				placed[it]++
				if !plan.BoundaryRects[d][bi].contains(terrOf[it]) {
					t.Errorf("boundary bucket d=%d #%d rect %+v does not contain territory %+v of segment %d",
						d, bi, plan.BoundaryRects[d][bi], terrOf[it], it)
				}
			}
		}
	}
	for _, it := range fail {
		if placed[it] != 1 {
			t.Errorf("segment %d placed %d times, want exactly once", it, placed[it])
		}
	}
	if len(placed) != len(fail) {
		t.Errorf("plan places %d distinct segments, want %d", len(placed), len(fail))
	}
	for i := range plan.Rects {
		for j := i + 1; j < len(plan.Rects); j++ {
			if !rectsDisjoint(plan.Rects[i], plan.Rects[j]) {
				t.Errorf("regions %d and %d overlap: %+v vs %+v",
					i, j, plan.Rects[i], plan.Rects[j])
			}
		}
	}
	for d, rects := range plan.BoundaryRects {
		for i := range rects {
			for j := i + 1; j < len(rects); j++ {
				if !rectsDisjoint(rects[i], rects[j]) {
					t.Errorf("level-%d buckets %d and %d overlap: %+v vs %+v",
						d, i, j, rects[i], rects[j])
				}
			}
		}
	}
}

func TestPartitionRegionsInvariants(t *testing.T) {
	t.Parallel()
	bounds := gridRect{X0: 0, Y0: 0, X1: 199, Y1: 149}
	rng := rand.New(rand.NewSource(41))
	randTerr := func(n int, span int) ([]int, []gridRect) {
		fail := make([]int, n)
		terr := make([]gridRect, n)
		for i := range fail {
			fail[i] = i
			x := rng.Intn(bounds.X1 - span)
			y := rng.Intn(bounds.Y1 - span)
			terr[i] = gridRect{
				X0: x, Y0: y,
				X1: clampInt(x+1+rng.Intn(span), 0, bounds.X1),
				Y1: clampInt(y+1+rng.Intn(span), 0, bounds.Y1),
			}
		}
		return fail, terr
	}

	t.Run("scattered", func(t *testing.T) {
		t.Parallel()
		fail, terr := randTerr(600, 8)
		plan := partitionRegions(append([]int(nil), fail...), append([]gridRect(nil), terr...), bounds)
		checkPlan(t, plan, fail, terr)
		if len(plan.Regions) < 2 {
			t.Errorf("scattered load split into %d regions, want parallelism", len(plan.Regions))
		}
	})

	t.Run("clustered", func(t *testing.T) {
		t.Parallel()
		// Three tight blobs: the partitioner must isolate them rather
		// than strand them all in boundary buckets.
		var fail []int
		var terr []gridRect
		for _, c := range [][2]int{{30, 30}, {150, 40}, {80, 120}} {
			for i := 0; i < 120; i++ {
				x := clampInt(c[0]+rng.Intn(13)-6, 0, bounds.X1-3)
				y := clampInt(c[1]+rng.Intn(13)-6, 0, bounds.Y1-3)
				fail = append(fail, len(fail))
				terr = append(terr, gridRect{X0: x, Y0: y, X1: x + 3, Y1: y + 3})
			}
		}
		plan := partitionRegions(append([]int(nil), fail...), append([]gridRect(nil), terr...), bounds)
		checkPlan(t, plan, fail, terr)
		if n := plan.boundaryCount(); 2*n > len(fail) {
			t.Errorf("boundary holds %d of %d segments; separated blobs should mostly land in regions", n, len(fail))
		}
	})

	t.Run("one-blob", func(t *testing.T) {
		t.Parallel()
		// Territories that all overlap one point: no admissible cut
		// separates them, so the plan must be a single region (the
		// blob-leaf rule), not a boundary bucket.
		var fail []int
		var terr []gridRect
		for i := 0; i < 200; i++ {
			fail = append(fail, i)
			terr = append(terr, gridRect{X0: 90, Y0: 70, X1: 110, Y1: 85})
		}
		plan := partitionRegions(append([]int(nil), fail...), append([]gridRect(nil), terr...), bounds)
		checkPlan(t, plan, fail, terr)
		if len(plan.Regions) != 1 || plan.boundaryCount() != 0 {
			t.Errorf("identical territories gave %d regions + %d boundary, want one blob region",
				len(plan.Regions), plan.boundaryCount())
		}
	})

	t.Run("small-leaf", func(t *testing.T) {
		t.Parallel()
		small := gridRect{X0: 0, Y0: 0, X1: 2*minRegionSpan - 2, Y1: 2*minRegionSpan - 2}
		fail, terr := randTerr(100, 3)
		for i := range terr {
			terr[i] = gridRect{
				X0: terr[i].X0 % minRegionSpan, Y0: terr[i].Y0 % minRegionSpan,
				X1: terr[i].X0%minRegionSpan + 1, Y1: terr[i].Y0%minRegionSpan + 1,
			}
		}
		plan := partitionRegions(append([]int(nil), fail...), append([]gridRect(nil), terr...), small)
		checkPlan(t, plan, fail, terr)
		if len(plan.Regions) != 1 {
			t.Errorf("rect below the cut span split into %d regions, want leaf", len(plan.Regions))
		}
	})
}

func TestPartitionRegionsDeterministic(t *testing.T) {
	t.Parallel()
	bounds := gridRect{X0: 0, Y0: 0, X1: 255, Y1: 255}
	rng := rand.New(rand.NewSource(17))
	n := 500
	fail := make([]int, n)
	terr := make([]gridRect, n)
	for i := range fail {
		fail[i] = i * 3
		x, y := rng.Intn(240), rng.Intn(240)
		terr[i] = gridRect{X0: x, Y0: y, X1: x + rng.Intn(12), Y1: y + rng.Intn(12)}
	}
	mk := func() regionPlan {
		return partitionRegions(append([]int(nil), fail...), append([]gridRect(nil), terr...), bounds)
	}
	a, b := mk(), mk()
	if len(a.Regions) != len(b.Regions) || len(a.BoundaryLevels) != len(b.BoundaryLevels) {
		t.Fatalf("plan shape diverged: %d/%d regions, %d/%d levels",
			len(a.Regions), len(b.Regions), len(a.BoundaryLevels), len(b.BoundaryLevels))
	}
	for ri := range a.Regions {
		if a.Rects[ri] != b.Rects[ri] || len(a.Regions[ri]) != len(b.Regions[ri]) {
			t.Fatalf("region %d diverged", ri)
		}
		for k := range a.Regions[ri] {
			if a.Regions[ri][k] != b.Regions[ri][k] {
				t.Fatalf("region %d item %d diverged", ri, k)
			}
		}
	}
}

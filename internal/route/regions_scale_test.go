package route

import (
	"testing"

	"casyn/internal/bench"
)

// TestPartitionRegionsInvariantsPaperScale runs the region-plan
// structural invariants at the paper's largest routing point — the
// 1M-gate synthetic placed netlist. This point used to be exercised
// only when CASYN_ROUTE_BENCH_FULL opted the benchmark into it; the
// partitioner's correctness at that scale now has a standing test,
// skipped in -short mode. The failing set a negotiation round hands
// the partitioner is the congested subset, not every segment, so the
// test reconstructs one the same way congestion forms: it accumulates
// each segment's territory into a per-gcell wiring-demand map and
// fails exactly the segments whose territory touches the most
// oversubscribed gcells.
func TestPartitionRegionsInvariantsPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-gate partitioner invariants skipped in short mode")
	}
	nl, pl, layout, err := bench.RouteSpecAt(1_000_000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.defaults(layout)
	density, err := cellDensity(nl, pl, layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(layout, opts, density)
	if err != nil {
		t.Fatal(err)
	}

	var segIdx []int
	var terrAll []gridRect
	var ptsBuf [][2]int
	for ni := range nl.Nets {
		pts := terminalCells(g, nl, pl, ni, ptsBuf[:0])
		ptsBuf = pts
		if len(pts) < 2 {
			continue
		}
		for _, pr := range mstPairs(g, pts) {
			segIdx = append(segIdx, len(segIdx))
			terrAll = append(terrAll, g.territory(pr[0], pr[1]))
		}
	}
	if len(segIdx) < 1_000_000 {
		t.Fatalf("1M-gate design decomposed into only %d segments", len(segIdx))
	}

	// Per-gcell demand: how many territories cover each cell, via a 2D
	// difference array. The top slice of cells is where a real first
	// pass overflows.
	demand := make([][]int64, g.NY+1)
	for y := range demand {
		demand[y] = make([]int64, g.NX+1)
	}
	for _, r := range terrAll {
		demand[r.Y0][r.X0]++
		demand[r.Y0][r.X1+1]--
		demand[r.Y1+1][r.X0]--
		demand[r.Y1+1][r.X1+1]++
	}
	var total int64
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if y > 0 {
				demand[y][x] += demand[y-1][x]
			}
			if x > 0 {
				demand[y][x] += demand[y][x-1]
			}
			if y > 0 && x > 0 {
				demand[y][x] -= demand[y-1][x-1]
			}
			total += demand[y][x]
		}
	}
	// Hot cells: demand well above the die average — the hotspot
	// centers plus the oversubscribed spread around them, like a first
	// pass's overflow map. hot2D's prefix sums answer "does this
	// territory touch a hot cell" in O(1) per segment.
	hotThreshold := 2 * total / int64(g.NX*g.NY)
	hot2D := make([][]int64, g.NY+1)
	for y := range hot2D {
		hot2D[y] = make([]int64, g.NX+1)
	}
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			v := int64(0)
			if demand[y][x] >= hotThreshold {
				v = 1
			}
			hot2D[y+1][x+1] = v + hot2D[y][x+1] + hot2D[y+1][x] - hot2D[y][x]
		}
	}
	touchesHot := func(r gridRect) bool {
		return hot2D[r.Y1+1][r.X1+1]-hot2D[r.Y0][r.X1+1]-hot2D[r.Y1+1][r.X0]+hot2D[r.Y0][r.X0] > 0
	}
	// A real round's failing set is the hotspot pile-up plus scattered
	// casualties across the die (global nets, secondary overflow); the
	// deterministic 1-in-64 sample stands in for the scattered part.
	var fail []int
	var terr []gridRect
	for i, r := range terrAll {
		if touchesHot(r) || i%64 == 0 {
			fail = append(fail, segIdx[i])
			terr = append(terr, r)
		}
	}
	if len(fail) < 10_000 || len(fail) > len(segIdx)/2 {
		t.Fatalf("hotspot failing set has %d of %d segments; demand threshold is miscalibrated", len(fail), len(segIdx))
	}

	all := gridRect{X0: 0, Y0: 0, X1: g.NX - 1, Y1: g.NY - 1}
	plan := partitionRegions(append([]int(nil), fail...), append([]gridRect(nil), terr...), all)
	checkPlan(t, plan, fail, terr)

	// The whole point of the partitioner at this scale is parallelism:
	// a paper-scale failing set must split into many independent
	// regions, and the serialized boundary share must stay a fraction.
	if len(plan.Regions) < 16 {
		t.Errorf("failing set of %d split into %d regions, want real parallelism", len(fail), len(plan.Regions))
	}
	if n := plan.boundaryCount(); 2*n > len(fail) {
		t.Errorf("boundary buckets hold %d of %d segments; most work should land in regions", n, len(fail))
	}
}

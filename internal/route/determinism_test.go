package route_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"casyn/internal/bench"
	"casyn/internal/experiments"
	"casyn/internal/route"
)

// fingerprint hashes every deterministic byte of a routing result: the
// scalar outcome fields, each net's routed length, and the full final
// congestion map (which pins the grid's edge usage, i.e. the actual
// paths, not just their summary statistics).
func fingerprint(res *route.Result) string {
	h := sha256.New()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f64 := func(v float64) { word(uint64(int64(v*1e6)) /* fixed-point, exact for µm sums */) }
	word(uint64(res.Violations))
	word(uint64(res.OverflowEdges))
	word(uint64(res.FailedConnections))
	word(uint64(res.RipupRounds))
	f64(res.WireLength)
	f64(res.MaxCongestion)
	for _, l := range res.NetLength {
		f64(l)
	}
	for _, row := range res.Grid.CongestionMap() {
		for _, v := range row {
			f64(v)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestRipupWorkersByteIdentical is the tentpole acceptance check at the
// route level: on a congested paper-scale-generator circuit, the
// parallel region-partitioned rip-up must produce a byte-identical
// result for every worker count.
func TestRipupWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("congested determinism run is ~seconds")
	}
	t.Parallel()
	nl, pl, layout, err := bench.RouteSpecAt(30_000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *route.Result {
		t.Helper()
		opts := experiments.RouteOpts()
		opts.RipupIterations = 5
		opts.Workers = workers
		res, err := route.RouteNetlist(context.Background(), nl, pl, layout, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	if ref.RipupRounds == 0 {
		t.Fatal("generator produced no congestion; the determinism check never exercised rip-up")
	}
	want := fingerprint(ref)
	t.Logf("workers=1: rounds=%d violations=%d fingerprint=%s…", ref.RipupRounds, ref.Violations, want[:16])
	for _, w := range []int{2, 8} {
		res := run(w)
		if got := fingerprint(res); got != want {
			t.Errorf("workers=%d fingerprint %s != workers=1 %s (violations %d vs %d, rounds %d vs %d)",
				w, got[:16], want[:16], res.Violations, ref.Violations, res.RipupRounds, ref.RipupRounds)
		}
	}
}

package route

// Regression tests for the congestion-map cache (grid.go): repeated
// reads between routing passes must be free (same map returned), and
// the cache must never serve a stale map after any usage write — the
// adaptive controller (flow.RunAdaptive) steers covering by this map,
// so a stale read would inflate the wrong windows.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/place"
)

// freshCongestionMap recomputes the map from scratch, bypassing the
// cache — the oracle the cached path is compared against.
func freshCongestionMap(g *Grid) [][]float64 {
	g.congMu.Lock()
	g.congMap = nil
	g.congDirty.Store(true)
	g.congMu.Unlock()
	return g.CongestionMap()
}

func sameMap(t *testing.T, tag string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows", tag, len(a), len(b))
	}
	for y := range a {
		for x := range a[y] {
			if a[y][x] != b[y][x] {
				t.Fatalf("%s: cell (%d,%d): %g vs %g", tag, x, y, a[y][x], b[y][x])
			}
		}
	}
}

func TestCongestionMapCacheHit(t *testing.T) {
	t.Parallel()
	g, err := NewGrid(testLayout(t), Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.addUsage(edge{x: 2, y: 2, horizontal: true}, 3)
	m1 := g.CongestionMap()
	m2 := g.CongestionMap()
	if &m1[0][0] != &m2[0][0] {
		t.Error("repeated CongestionMap with no writes recomputed (cache miss)")
	}
}

func TestCongestionMapInvalidatedByUsage(t *testing.T) {
	t.Parallel()
	g, err := NewGrid(testLayout(t), Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := edge{x: 4, y: 4, horizontal: false}
	g.addUsage(e, g.capV[4][4]/2)
	before := g.CongestionMap()
	// Overload the edge past capacity; the next read must see it.
	g.addUsage(e, g.capV[4][4])
	after := g.CongestionMap()
	if &before[0][0] == &after[0][0] {
		t.Fatal("usage write did not invalidate the cached map")
	}
	if after[4][4] <= 1 {
		t.Errorf("map is stale: congestion at overloaded cell = %g", after[4][4])
	}
	// The previously returned map is an immutable snapshot of the usage
	// it was computed from, not a view that mutated under the caller.
	if before[4][4] != 0.5 {
		t.Errorf("earlier snapshot mutated: %g, want 0.5", before[4][4])
	}
	// Negative deltas (rip-up removing a path) must invalidate too.
	g.addUsage(e, -g.capV[4][4])
	sameMap(t, "after rip-down", g.CongestionMap(), freshCongestionMap(g))
}

// TestCongestionMapFreshAfterRipup is the end-to-end stale-map
// regression: after a full congested route — initial pattern pass plus
// rip-up/reroute negotiation, the exact writer sequence the adaptive
// loop observes — the cached map must equal a from-scratch recompute.
func TestCongestionMapFreshAfterRipup(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	// Many nets crossing the same corridor: enough demand to force the
	// rip-up negotiation to move paths (the TestRipupRepairsHotspot
	// regime).
	var nl place.Netlist
	var pos []geom.Point
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		a := len(pos)
		pos = append(pos, geom.Pt(5, 25+rng.Float64()*2))
		b := len(pos)
		pos = append(pos, geom.Pt(195, 25+rng.Float64()*2))
		nl.Widths = append(nl.Widths, 1, 1)
		nl.Nets = append(nl.Nets, place.Net{Cells: []int{a, b}})
	}
	pl := &place.Placement{Pos: pos, Row: make([]int, len(pos))}
	res, err := RouteNetlist(context.Background(), &nl, pl, layout,
		Options{GCellSize: 10, RipupIterations: 4, CapacityScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cached := res.Grid.CongestionMap()
	sameMap(t, "post-route", cached, freshCongestionMap(res.Grid))
}

func TestCongestionMapConcurrentReaders(t *testing.T) {
	t.Parallel()
	g, err := NewGrid(testLayout(t), Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: concurrent disjoint-region writers, the negotiation
	// access pattern — each worker touches its own edges, all race on
	// the (atomic) dirty flag. No invalidation may be lost.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g.addUsage(edge{x: (4*i + w) % g.NX, y: w, horizontal: true}, 1)
			}
		}()
	}
	wg.Wait()
	// Phase 2 (writes settled, ordered by the WaitGroup): concurrent
	// readers must share one freshly computed map.
	maps := make([][][]float64, 4)
	for r := range maps {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			maps[r] = g.CongestionMap()
		}()
	}
	wg.Wait()
	for r := 1; r < len(maps); r++ {
		if &maps[r][0][0] != &maps[0][0][0] {
			t.Fatal("concurrent readers got different maps")
		}
	}
	sameMap(t, "post-negotiation", maps[0], freshCongestionMap(g))
}

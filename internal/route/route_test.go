package route

import (
	"context"

	"math"
	"math/rand"
	"strings"
	"testing"

	"casyn/internal/geom"
	"casyn/internal/place"
)

func testLayout(t *testing.T) place.Layout {
	t.Helper()
	l, err := place.LayoutWithRows(20, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewGridGeometry(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	g, err := NewGrid(layout, Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 20 || g.NY != 10 {
		t.Fatalf("grid %dx%d, want 20x10", g.NX, g.NY)
	}
	x, y := g.GCellOf(geom.Pt(15, 15))
	if x != 1 || y != 1 {
		t.Errorf("GCellOf = %d,%d", x, y)
	}
	// Clamping.
	x, y = g.GCellOf(geom.Pt(-5, 1e6))
	if x != 0 || y != g.NY-1 {
		t.Errorf("GCellOf clamp = %d,%d", x, y)
	}
	c := g.Center(0, 0)
	if c != geom.Pt(5, 5) {
		t.Errorf("Center = %v", c)
	}
}

func TestGridCapacityDerate(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	full, err := NewGrid(layout, Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	density := make([][]float64, full.NY)
	for y := range density {
		density[y] = make([]float64, full.NX)
		for x := range density[y] {
			density[y][x] = 1.0
		}
	}
	dense, err := NewGrid(layout, Options{GCellSize: 10}, density)
	if err != nil {
		t.Fatal(err)
	}
	if dense.capH[0][0] >= full.capH[0][0] {
		t.Errorf("density did not derate capacity: %g vs %g", dense.capH[0][0], full.capH[0][0])
	}
	if dense.capH[0][0] <= 0 {
		t.Error("derate must not zero out capacity at default penalty")
	}
}

func TestOverflowAccounting(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	g, err := NewGrid(layout, Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := edge{x: 3, y: 3, horizontal: true}
	cap0 := g.capH[3][3]
	g.addUsage(e, cap0+5)
	if got := g.TotalOverflow(); got != 5 {
		t.Errorf("TotalOverflow = %d, want 5", got)
	}
	if ov := g.overflowOf(e); math.Abs(ov-5) > 1e-9 {
		t.Errorf("overflowOf = %g", ov)
	}
	if mc := g.MaxCongestion(); mc <= 1 {
		t.Errorf("MaxCongestion = %g, want > 1", mc)
	}
	cm := g.CongestionMap()
	if cm[3][3] <= 1 {
		t.Errorf("congestion map at hotspot = %g", cm[3][3])
	}
	if cm[0][0] != 0 {
		t.Errorf("congestion map at idle cell = %g", cm[0][0])
	}
}

// simple two-cell netlist with a known net.
func twoCellNetlist(p1, p2 geom.Point) (*place.Netlist, *place.Placement) {
	nl := &place.Netlist{
		Widths: []float64{2, 2},
		Nets:   []place.Net{{Cells: []int{0, 1}}},
	}
	pl := &place.Placement{Pos: []geom.Point{p1, p2}, Row: []int{0, 0}}
	return nl, pl
}

func TestRouteSingleNet(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	nl, pl := twoCellNetlist(geom.Pt(5, 5), geom.Pt(105, 55))
	res, err := RouteNetlist(context.Background(), nl, pl, layout, Options{GCellSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Routable() {
		t.Errorf("single net unroutable: %d violations", res.Violations)
	}
	// Manhattan distance is 150 µm; the routed length must match the
	// gcell-quantized distance (10 edges horizontal + 5 vertical).
	if math.Abs(res.NetLength[0]-150) > 1e-6 {
		t.Errorf("routed length = %g, want 150", res.NetLength[0])
	}
	if res.WireLength != res.NetLength[0] {
		t.Error("total wirelength mismatch")
	}
}

func TestRouteSameGCellNetIsFree(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	nl, pl := twoCellNetlist(geom.Pt(5, 5), geom.Pt(6, 6))
	res, err := RouteNetlist(context.Background(), nl, pl, layout, Options{GCellSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.WireLength != 0 || !res.Routable() {
		t.Errorf("intra-gcell net: len=%g violations=%d", res.WireLength, res.Violations)
	}
}

func TestRouteMultiPinNetUsesMST(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	nl := &place.Netlist{
		Widths: []float64{1, 1, 1},
		Nets:   []place.Net{{Cells: []int{0, 1, 2}}},
	}
	pl := &place.Placement{
		Pos: []geom.Point{geom.Pt(5, 5), geom.Pt(55, 5), geom.Pt(105, 5)},
		Row: []int{0, 0, 0},
	}
	res, err := RouteNetlist(context.Background(), nl, pl, layout, Options{GCellSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	// MST connects 0-1-2 along the row: 100 µm, not 150 (star via
	// both pairs from 0 would double-count).
	if math.Abs(res.NetLength[0]-100) > 1e-6 {
		t.Errorf("MST length = %g, want 100", res.NetLength[0])
	}
}

func TestRouteWithPads(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	nl := &place.Netlist{
		Widths: []float64{1},
		Nets:   []place.Net{{Cells: []int{0}, Pads: []geom.Point{geom.Pt(0, 0)}}},
	}
	pl := &place.Placement{Pos: []geom.Point{geom.Pt(95, 45)}, Row: []int{0}}
	res, err := RouteNetlist(context.Background(), nl, pl, layout, Options{GCellSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetLength[0] <= 0 {
		t.Error("pad net not routed")
	}
}

func TestRipupRepairsHotspot(t *testing.T) {
	t.Parallel()
	// Saturate a narrow corridor: many parallel nets crossing the
	// same column. With rip-up they must spread; the router should
	// not leave avoidable overflow when plenty of capacity exists in
	// neighboring rows.
	layout := testLayout(t)
	var nl place.Netlist
	var pos []geom.Point
	rng := rand.New(rand.NewSource(2))
	nNets := 60
	for i := 0; i < nNets; i++ {
		a := len(pos)
		// All nets want to cross the die horizontally at y≈25.
		pos = append(pos, geom.Pt(5, 25+rng.Float64()*2))
		b := len(pos)
		pos = append(pos, geom.Pt(195, 25+rng.Float64()*2))
		nl.Widths = append(nl.Widths, 1, 1)
		nl.Nets = append(nl.Nets, place.Net{Cells: []int{a, b}})
	}
	pl := &place.Placement{Pos: pos, Row: make([]int, len(pos))}
	noRipup, err := RouteNetlist(context.Background(), &nl, pl, layout, Options{GCellSize: 10, DisableRipup: true})
	if err != nil {
		t.Fatal(err)
	}
	withRipup, err := RouteNetlist(context.Background(), &nl, pl, layout, Options{GCellSize: 10, RipupIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if withRipup.Violations > noRipup.Violations {
		t.Errorf("rip-up increased violations: %d -> %d", noRipup.Violations, withRipup.Violations)
	}
	t.Logf("violations: initial %d, after rip-up %d", noRipup.Violations, withRipup.Violations)
}

func TestDisableRipupContract(t *testing.T) {
	t.Parallel()
	// DisableRipup and the legacy RipupIterations<0 sentinel normalize
	// to the same state: rip-up off, zero iterations.
	layout := testLayout(t)
	for _, o := range []Options{
		{DisableRipup: true},
		{RipupIterations: -1},
		{RipupIterations: -1, DisableRipup: true},
	} {
		o.defaults(layout)
		if !o.DisableRipup || o.RipupIterations != 0 {
			t.Errorf("normalized %+v: want DisableRipup=true, RipupIterations=0", o)
		}
	}
	var def Options
	def.defaults(layout)
	if def.DisableRipup || def.RipupIterations != 3 {
		t.Errorf("default options %+v: want rip-up enabled with 3 iterations", def)
	}
}

func TestRouterErrors(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	nl, _ := twoCellNetlist(geom.Pt(0, 0), geom.Pt(1, 1))
	badPl := &place.Placement{Pos: []geom.Point{geom.Pt(0, 0)}}
	if _, err := RouteNetlist(context.Background(), nl, badPl, layout, Options{}); err == nil {
		t.Error("mismatched placement accepted")
	}
}

func TestCongestionGrowsWithDemand(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	build := func(n int) (*place.Netlist, *place.Placement) {
		var nl place.Netlist
		var pos []geom.Point
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			a := len(pos)
			pos = append(pos, geom.Pt(rng.Float64()*200, rng.Float64()*100))
			b := len(pos)
			pos = append(pos, geom.Pt(rng.Float64()*200, rng.Float64()*100))
			nl.Widths = append(nl.Widths, 1, 1)
			nl.Nets = append(nl.Nets, place.Net{Cells: []int{a, b}})
		}
		return &nl, &place.Placement{Pos: pos, Row: make([]int, len(pos))}
	}
	nlLo, plLo := build(30)
	nlHi, plHi := build(600)
	lo, err := RouteNetlist(context.Background(), nlLo, plLo, layout, Options{GCellSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RouteNetlist(context.Background(), nlHi, plHi, layout, Options{GCellSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if hi.MaxCongestion <= lo.MaxCongestion {
		t.Errorf("congestion did not grow with demand: %g vs %g", lo.MaxCongestion, hi.MaxCongestion)
	}
}

func TestCongestionMapRenderAndHotspots(t *testing.T) {
	t.Parallel()
	layout := testLayout(t)
	g, err := NewGrid(layout, Options{GCellSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate one edge and nearly fill another.
	g.addUsage(edge{x: 2, y: 2, horizontal: true}, g.capH[2][2]*1.5)
	g.addUsage(edge{x: 5, y: 5, horizontal: false}, g.capV[5][5]*0.8)
	var buf strings.Builder
	if err := g.WriteCongestionMap(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "█") {
		t.Error("overflow cell not rendered as full block")
	}
	if !strings.Contains(out, "▓") {
		t.Error("80% cell not rendered as dark shade")
	}
	if got := g.HotspotCount(1.0); got < 1 || got > 4 {
		t.Errorf("HotspotCount(1.0) = %d, want the saturated neighborhood", got)
	}
	if g.HotspotCount(0.1) <= g.HotspotCount(1.0) {
		t.Error("lower threshold must count at least as many hotspots")
	}
}

func TestRouteWorkersDeterminism(t *testing.T) {
	t.Parallel()
	// The parallel first pass works in fixed batches against an
	// immutable congestion snapshot, so every Workers value must give
	// the same result — including rip-up, which starts from the same
	// initial usage.
	layout := testLayout(t)
	var nl place.Netlist
	var pos []geom.Point
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		a := len(pos)
		pos = append(pos, geom.Pt(rng.Float64()*200, rng.Float64()*100))
		b := len(pos)
		pos = append(pos, geom.Pt(rng.Float64()*200, rng.Float64()*100))
		nl.Widths = append(nl.Widths, 1, 1)
		nl.Nets = append(nl.Nets, place.Net{Cells: []int{a, b}})
	}
	pl := &place.Placement{Pos: pos, Row: make([]int, len(pos))}
	route := func(workers int) *Result {
		t.Helper()
		res, err := RouteNetlist(context.Background(), &nl, pl, layout,
			Options{GCellSize: 10, RipupIterations: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := route(1)
	for _, w := range []int{0, 2, 8} {
		got := route(w)
		if got.Violations != ref.Violations ||
			got.OverflowEdges != ref.OverflowEdges ||
			got.FailedConnections != ref.FailedConnections ||
			got.WireLength != ref.WireLength ||
			got.MaxCongestion != ref.MaxCongestion {
			t.Errorf("workers=%d diverged: %+v vs %+v", w, got, ref)
		}
		for i := range ref.NetLength {
			if got.NetLength[i] != ref.NetLength[i] {
				t.Fatalf("workers=%d: net %d length %g != %g", w, i, got.NetLength[i], ref.NetLength[i])
			}
		}
	}
}

package casyn

// The repository benchmark harness: one benchmark per table and figure
// of the paper's evaluation section, each regenerating its experiment
// on a scaled-down circuit (the full-size tables are printed by the
// cmd/ksweep, cmd/timing, and cmd/table1 tools), plus the DESIGN.md
// ablations and per-stage pipeline benchmarks.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline numbers
// (violations, areas, arrival times) so a benchmark run doubles as a
// shape check.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"math/rand"

	"casyn/internal/bench"
	"casyn/internal/experiments"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/mapper"
	"casyn/internal/obs"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/verify"
)

// benchScale shrinks every benchmark circuit; the experiments keep
// their structure but finish in seconds.
const benchScale = 0.05

// BenchmarkTable1 regenerates Table 1: TOO_LARGE mapped via the SIS
// path and the structure-preserving DAGON path, placed and routed in
// one fixed die.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table1(context.Background(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CellArea, "sis-area")
		b.ReportMetric(rows[1].CellArea, "dagon-area")
	}
}

// BenchmarkTable2 regenerates Table 2: the SPLA K sweep.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.KSweep(context.Background(), bench.SPLA, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		first := res.Rows[0]
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(first.CellArea, "area-K0")
		b.ReportMetric(last.CellArea, "area-K1")
		b.ReportMetric(float64(last.Violations), "viol-K1")
	}
}

// BenchmarkTable3 regenerates Table 3: SPLA static timing across the
// three synthesis variants at their minimal routable dies.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.STATable(context.Background(), bench.SPLA, benchScale, 0.001, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Arrival, "ns-K0")
		b.ReportMetric(rows[1].Arrival, "ns-midK")
		b.ReportMetric(rows[2].Arrival, "ns-SIS")
	}
}

// BenchmarkTable4 regenerates Table 4: the PDC K sweep.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.KSweep(context.Background(), bench.PDC, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].CellArea, "area-K0")
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].Violations), "viol-K1")
	}
}

// BenchmarkTable5 regenerates Table 5: PDC static timing.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.STATable(context.Background(), bench.PDC, benchScale, 0.001, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Arrival, "ns-K0")
		b.ReportMetric(rows[2].Arrival, "ns-SIS")
	}
}

// BenchmarkFigure1 regenerates Figure 1: the two mappings of the
// motivating example.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		minArea, congestion, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(minArea.Wire, "minarea-wire")
		b.ReportMetric(congestion.Wire, "cong-wire")
	}
}

// BenchmarkFigure3 regenerates Figure 3: the modified design flow
// iterating K until the congestion map is clean.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(context.Background(), bench.SPLA, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Iterations)), "iterations")
	}
}

// BenchmarkAblationPartition compares the three DAG partitioning
// schemes (DESIGN.md ablation).
func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PartitionAblation(context.Background(), bench.SPLA, benchScale, 0.001)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CellArea, "pdp-area")
		b.ReportMetric(rows[1].CellArea, "dagon-area")
	}
}

// BenchmarkAblationWireCost compares the paper's two-level WIRE scope
// against WIRE1-only and the transitive-fanin cost of Pedram–Bhat [9].
func BenchmarkAblationWireCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WireCostAblation(context.Background(), bench.SPLA, benchScale, 0.005)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WireEstimate, "two-level")
		b.ReportMetric(rows[2].WireEstimate, "transitive")
	}
}

// Pipeline-stage micro-benchmarks.

func benchContext(b *testing.B) (*flow.Context, flow.Config) {
	b.Helper()
	spec := bench.SPLA.ScaledSpec(benchScale)
	p, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/0.58, 1.0, library.RowHeight)
	if err != nil {
		b.Fatal(err)
	}
	cfg := flow.Config{
		Layout:         layout,
		PlaceOpts:      experiments.PlaceOpts(),
		RouteOpts:      experiments.RouteOpts(),
		FreshPlacement: true,
	}
	pc, err := flow.Prepare(context.Background(), d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return pc, cfg
}

// BenchmarkSubjectPlacement measures the once-per-design placement of
// the technology-independent netlist.
func BenchmarkSubjectPlacement(b *testing.B) {
	spec := bench.SPLA.ScaledSpec(benchScale)
	p, err := bench.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/0.58, 1.0, library.RowHeight)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := mapper.SubjectPlacement(context.Background(), d, layout, experiments.PlaceOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMap measures one congestion-aware technology mapping.
func BenchmarkMap(b *testing.B) {
	pc, _ := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mapper.Map(context.Background(), pc.DAG, mapper.Input{Pos: pc.Pos, POPads: pc.POPads}, mapper.Options{K: 0.001})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NumCells), "cells")
	}
}

// BenchmarkPlaceAndRoute measures placement plus global routing of a
// mapped netlist.
func BenchmarkPlaceAndRoute(b *testing.B) {
	pc, cfg := benchContext(b)
	mres, err := mapper.Map(context.Background(), pc.DAG, mapper.Input{Pos: pc.Pos, POPads: pc.POPads}, mapper.Options{K: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	pn := mres.Netlist.ToPlacement(pc.PIPads, pc.POList)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := place.PlaceNetlist(context.Background(), pn.Cells, cfg.Layout, cfg.PlaceOpts)
		if err != nil {
			b.Fatal(err)
		}
		rres, err := route.RouteNetlist(context.Background(), pn.Cells, pl, cfg.Layout, cfg.RouteOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rres.WireLength, "wirelength")
	}
}

// BenchmarkFullFlow measures one complete flow iteration (map, place,
// route, STA).
func BenchmarkFullFlow(b *testing.B) {
	pc, cfg := benchContext(b)
	cfg.RunSTA = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := flow.RunOnce(context.Background(), pc, 0.001, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(it.Timing.MaxArrival, "arrival-ns")
	}
}

// BenchmarkKSweepParallel measures the SPLA K sweep serial
// (Workers: 1) against the full worker pool (Workers: 0 = GOMAXPROCS)
// and reports the speedup. Each run also writes BENCH_parallel.json so
// the perf trajectory is tracked across PRs; on a single-CPU machine
// the speedup is honestly ~1.0 — the determinism tests, not this
// number, guard correctness there.
func BenchmarkKSweepParallel(b *testing.B) {
	pc, cfg := benchContext(b)
	cfg.KSchedule = experiments.KSchedule()
	run := func(workers int) time.Duration {
		c := cfg
		c.Workers = workers
		start := time.Now()
		if _, err := flow.Run(context.Background(), pc, c); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial += run(1)
		parallel += run(0)
	}
	b.StopTimer()
	speedup := float64(serial) / float64(parallel)
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial-s")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel-s")
	b.ReportMetric(speedup, "speedup")
	artifact := struct {
		Bench      string  `json:"bench"`
		Scale      float64 `json:"scale"`
		KValues    int     `json:"k_values"`
		Workers    int     `json:"workers"`
		SerialNs   int64   `json:"serial_ns"`
		ParallelNs int64   `json:"parallel_ns"`
		Speedup    float64 `json:"speedup"`
	}{
		Bench:      "spla-ksweep",
		Scale:      benchScale,
		KValues:    len(cfg.KSchedule),
		Workers:    runtime.GOMAXPROCS(0),
		SerialNs:   serial.Nanoseconds() / int64(b.N),
		ParallelNs: parallel.Nanoseconds() / int64(b.N),
		Speedup:    speedup,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKSweepPrepared measures the shared K-sweep prefix: mapping
// the full 14-rung ladder with a fresh mapper.Map per K against one
// mapper.Prepare plus a MapPrepared per K. Both sides run serially so
// the ratio isolates the algorithmic win (hoisted partitioning and
// match enumeration), not goroutine scheduling. Writes
// BENCH_prepared.json so the speedup is tracked across PRs.
func BenchmarkKSweepPrepared(b *testing.B) {
	pc, _ := benchContext(b)
	ks := experiments.KSchedule()
	in := mapper.Input{Pos: pc.Pos, POPads: pc.POPads}
	opts := mapper.Options{Workers: 1}
	var serial, prepared time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, k := range ks {
			o := opts
			o.K = k
			if _, err := mapper.Map(context.Background(), pc.DAG, in, o); err != nil {
				b.Fatal(err)
			}
		}
		serial += time.Since(start)

		start = time.Now()
		prep, err := mapper.Prepare(context.Background(), pc.DAG, in, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range ks {
			if _, err := mapper.MapPrepared(context.Background(), prep, k); err != nil {
				b.Fatal(err)
			}
		}
		prepared += time.Since(start)
	}
	b.StopTimer()
	speedup := float64(serial) / float64(prepared)
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial-s")
	b.ReportMetric(prepared.Seconds()/float64(b.N), "prepared-s")
	b.ReportMetric(speedup, "speedup")
	artifact := struct {
		Bench      string  `json:"bench"`
		Scale      float64 `json:"scale"`
		KValues    int     `json:"k_values"`
		SerialNs   int64   `json:"serial_ns"`
		PreparedNs int64   `json:"prepared_ns"`
		Speedup    float64 `json:"speedup"`
	}{
		Bench:      "spla-ksweep-mapping",
		Scale:      benchScale,
		KValues:    len(ks),
		SerialNs:   serial.Nanoseconds() / int64(b.N),
		PreparedNs: prepared.Nanoseconds() / int64(b.N),
		Speedup:    speedup,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_prepared.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkObsOverhead measures what the observability layer costs: a
// full flow iteration with a recorder on the context against the same
// iteration with observability disabled (the nil-recorder no-op path).
// Writes BENCH_obs.json so the overhead trajectory is tracked across
// PRs — the layer's contract is that the ratio stays ~1.0 and the
// event counts stay nonzero.
func BenchmarkObsOverhead(b *testing.B) {
	pc, cfg := benchContext(b)
	var plain, instrumented time.Duration
	var spans, counters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := flow.RunOnce(context.Background(), pc, 0.001, cfg); err != nil {
			b.Fatal(err)
		}
		plain += time.Since(start)

		rec := obs.New()
		ctx := obs.WithRecorder(context.Background(), rec)
		start = time.Now()
		it, err := flow.RunOnce(ctx, pc, 0.001, cfg)
		if err != nil {
			b.Fatal(err)
		}
		instrumented += time.Since(start)
		if it.Metrics == nil {
			b.Fatal("instrumented run produced no metrics")
		}
		snap := it.Metrics.Events
		spans, counters = len(snap.Spans), len(snap.Counters)
	}
	b.StopTimer()
	overhead := float64(instrumented) / float64(plain)
	b.ReportMetric(plain.Seconds()/float64(b.N), "plain-s")
	b.ReportMetric(instrumented.Seconds()/float64(b.N), "instrumented-s")
	b.ReportMetric(overhead, "overhead-ratio")
	artifact := struct {
		Bench          string  `json:"bench"`
		Scale          float64 `json:"scale"`
		PlainNs        int64   `json:"plain_ns"`
		InstrumentedNs int64   `json:"instrumented_ns"`
		OverheadRatio  float64 `json:"overhead_ratio"`
		Spans          int     `json:"spans"`
		Counters       int     `json:"counters"`
	}{
		Bench:          "spla-flow-iteration",
		Scale:          benchScale,
		PlainNs:        plain.Nanoseconds() / int64(b.N),
		InstrumentedNs: instrumented.Nanoseconds() / int64(b.N),
		OverheadRatio:  overhead,
		Spans:          spans,
		Counters:       counters,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRouteParallel measures the region-partitioned parallel
// rip-up/reroute at paper scale: synthetic placed netlists
// (internal/bench RouteSpec, 100k+ gates with congestion hotspots)
// routed with Workers: 1 against the full pool (Workers: 0). It
// reports the rip-up span's wall time on both sides, the speedup, the
// negotiation round count, and the final overflow — and fails if the
// parallel overflow differs from the serial baseline, since the
// negotiation is byte-identical at any worker count. Writes
// BENCH_route.json so the routing perf trajectory is tracked across
// PRs; on a single-CPU machine the speedup is honestly ~1.0 — the
// determinism tests, not this number, guard correctness there. Set
// CASYN_ROUTE_BENCH_FULL=1 to include the 1M-gate point.
func BenchmarkRouteParallel(b *testing.B) {
	gates := []int{100_000, 250_000}
	if os.Getenv("CASYN_ROUTE_BENCH_FULL") != "" {
		gates = append(gates, 1_000_000)
	}
	type row struct {
		Gates           int     `json:"gates"`
		Nets            int     `json:"nets"`
		Segments        int64   `json:"segments"`
		SerialRipupNs   int64   `json:"serial_ripup_ns"`
		ParallelRipupNs int64   `json:"parallel_ripup_ns"`
		Speedup         float64 `json:"speedup"`
		Rounds          int     `json:"rounds"`
		Regions         int64   `json:"regions"`
		BoundaryNets    int64   `json:"boundary_nets"`
		InitialOverflow int     `json:"initial_overflow"`
		FinalOverflow   int     `json:"final_overflow"`
	}
	// The testing package may invoke a sub-benchmark several times
	// (N=1 probe, then the measured run); keep only the last — largest
	// N — measurement per scale.
	rowBy := map[int]row{}
	for _, g := range gates {
		g := g
		b.Run(fmt.Sprintf("gates=%d", g), func(b *testing.B) {
			nl, pl, layout, err := bench.RouteSpecAt(g).Generate()
			if err != nil {
				b.Fatal(err)
			}
			// The flow's calibrated capacity model, with a longer
			// negotiation budget: congestion here is real but clearable,
			// so the rounds do productive work.
			opts := experiments.RouteOpts()
			opts.RipupIterations = 6
			type outcome struct {
				ripup time.Duration
				res   *route.Result
				snap  obs.Snapshot
			}
			run := func(workers int) outcome {
				o := opts
				o.Workers = workers
				rec := obs.New()
				ctx := obs.WithRecorder(context.Background(), rec)
				res, err := route.RouteNetlist(ctx, nl, pl, layout, o)
				if err != nil {
					b.Fatal(err)
				}
				out := outcome{res: res, snap: rec.Snapshot()}
				for _, s := range out.snap.Spans {
					if s.Name == "route.ripup" {
						out.ripup = s.Wall
					}
				}
				return out
			}
			run(0) // warm the allocator so run order doesn't bias the ratio
			var serial, parallel time.Duration
			var so, po outcome
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				so = run(1)
				serial += so.ripup
				po = run(0)
				parallel += po.ripup
			}
			b.StopTimer()
			if so.res.Violations != po.res.Violations {
				b.Fatalf("parallel overflow %d != serial baseline %d",
					po.res.Violations, so.res.Violations)
			}
			if so.res.RipupRounds == 0 {
				b.Fatal("benchmark circuit routed without congestion — nothing to negotiate")
			}
			speedup := float64(serial) / float64(parallel)
			b.ReportMetric(serial.Seconds()/float64(b.N), "serial-ripup-s")
			b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel-ripup-s")
			b.ReportMetric(speedup, "speedup")
			b.ReportMetric(float64(po.res.Violations), "overflow")
			rowBy[g] = row{
				Gates:           g,
				Nets:            len(nl.Nets),
				Segments:        po.snap.Counters["route.segments"],
				SerialRipupNs:   serial.Nanoseconds() / int64(b.N),
				ParallelRipupNs: parallel.Nanoseconds() / int64(b.N),
				Speedup:         speedup,
				Rounds:          po.res.RipupRounds,
				Regions:         po.snap.Counters["route.regions"],
				BoundaryNets:    po.snap.Counters["route.boundary_nets"],
				InitialOverflow: int(po.snap.Histograms["route.round_overflow"].Max),
				FinalOverflow:   po.res.Violations,
			}
		})
	}
	var rows []row
	for _, g := range gates {
		if r, ok := rowBy[g]; ok {
			rows = append(rows, r)
		}
	}
	artifact := struct {
		Bench   string `json:"bench"`
		Workers int    `json:"workers"`
		Rows    []row  `json:"rows"`
	}{Bench: "route-ripup-parallel", Workers: runtime.GOMAXPROCS(0), Rows: rows}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_route.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdaptive measures the closed-loop congestion controller
// against the full 14-rung open-loop K ladder on the flagship
// congested operating point (SPLA at 55% target utilization, router
// capacity scaled to 1.3, seeded placement — the regime where the
// baseline K is unroutable and K choice actually matters). Both arms
// share one prepared prefix; the headline is the wall-clock ratio and
// the covering-iteration count (14 rungs vs ≤3 routed iterations).
// The final overflow is cross-checked: the accepted adaptive iteration
// must be no worse than the ladder's accepted rung. Writes
// BENCH_adaptive.json so the trajectory is tracked across PRs.
func BenchmarkAdaptive(b *testing.B) {
	const tightness, capScale = 0.55, 1.3
	p, err := bench.Generate(bench.SPLA.ScaledSpec(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := place.NewLayout(float64(d.BaseGateCount())*4.6/tightness, 1.0, library.RowHeight)
	if err != nil {
		b.Fatal(err)
	}
	cfg := flow.Config{
		Layout:         layout,
		Lib:            library.Default(),
		PlaceOpts:      place.Options{Seed: 1},
		RouteOpts:      route.Options{CapacityScale: capScale},
		FreshPlacement: false,
		Workers:        4,
	}
	ctx := context.Background()
	pc, err := flow.Prepare(ctx, d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := flow.PrepareMapping(ctx, pc, cfg); err != nil {
		b.Fatal(err)
	}
	lcfg := cfg
	lcfg.KSchedule = flow.DefaultKSchedule()

	var ladderWall, adaptiveWall time.Duration
	var ladderViol, adaptiveViol, adaptiveIters int
	var converged bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		ladder, err := flow.Run(ctx, pc, lcfg)
		if err != nil {
			b.Fatal(err)
		}
		ladderWall += time.Since(start)

		start = time.Now()
		ares, err := flow.RunAdaptive(ctx, pc, cfg, flow.AdaptiveConfig{})
		if err != nil {
			b.Fatal(err)
		}
		adaptiveWall += time.Since(start)

		lbest, abest := ladder.Best(), ares.Best()
		if lbest == nil || abest == nil {
			b.Fatal("an arm produced no iterations")
		}
		if !abest.Routable && abest.Violations > lbest.Violations {
			b.Fatalf("adaptive overflow %d worse than ladder best %d",
				abest.Violations, lbest.Violations)
		}
		ladderViol, adaptiveViol = lbest.Violations, abest.Violations
		adaptiveIters, converged = ares.RoutedIterations(), ares.Converged
	}
	b.StopTimer()
	if !converged {
		b.Fatal("adaptive loop did not converge within its budget")
	}
	speedup := float64(ladderWall) / float64(adaptiveWall)
	b.ReportMetric(ladderWall.Seconds()/float64(b.N), "ladder-s")
	b.ReportMetric(adaptiveWall.Seconds()/float64(b.N), "adaptive-s")
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(adaptiveIters), "adaptive-iterations")
	b.ReportMetric(float64(adaptiveViol), "adaptive-overflow")
	artifact := struct {
		Bench         string  `json:"bench"`
		Scale         float64 `json:"scale"`
		Tightness     float64 `json:"tightness"`
		CapacityScale float64 `json:"capacity_scale"`
		LadderRungs   int     `json:"ladder_rungs"`
		AdaptiveIters int     `json:"adaptive_iterations"`
		LadderNs      int64   `json:"ladder_ns"`
		AdaptiveNs    int64   `json:"adaptive_ns"`
		Speedup       float64 `json:"speedup"`
		LadderViol    int     `json:"ladder_overflow"`
		AdaptiveViol  int     `json:"adaptive_overflow"`
		Converged     bool    `json:"converged"`
	}{
		Bench:         "spla-adaptive-vs-ladder",
		Scale:         benchScale,
		Tightness:     tightness,
		CapacityScale: capScale,
		LadderRungs:   len(lcfg.KSchedule),
		AdaptiveIters: adaptiveIters,
		LadderNs:      ladderWall.Nanoseconds() / int64(b.N),
		AdaptiveNs:    adaptiveWall.Nanoseconds() / int64(b.N),
		Speedup:       speedup,
		LadderViol:    ladderViol,
		AdaptiveViol:  adaptiveViol,
		Converged:     converged,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_adaptive.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// Equivalence-checker benchmarks: the simulation engine's vector
// throughput and the BDD backend's proof cost on the standard
// benchmark circuit (subject DAG vs its mapped netlist). Both merge
// their numbers into BENCH_verify.json so the checker's perf
// trajectory is tracked across PRs alongside the parallel sweep's.

// verifyPair maps the benchmark circuit once and returns the DAG and
// netlist the checker compares.
func verifyPair(b *testing.B) (*flow.Context, *mapper.Result) {
	b.Helper()
	pc, _ := benchContext(b)
	mres, err := mapper.Map(context.Background(), pc.DAG, mapper.Input{Pos: pc.Pos, POPads: pc.POPads}, mapper.Options{K: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	return pc, mres
}

// writeVerifyBench merges one benchmark's numbers into
// BENCH_verify.json (each benchmark owns a key, so either can run
// alone without clobbering the other).
func writeVerifyBench(b *testing.B, key string, value map[string]any) {
	b.Helper()
	artifact := map[string]any{}
	if data, err := os.ReadFile("BENCH_verify.json"); err == nil {
		// Best effort: a corrupt or hand-edited file is overwritten.
		_ = json.Unmarshal(data, &artifact)
	}
	artifact[key] = value
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_verify.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkVerifySim measures the 64-way bit-parallel simulation
// engine alone (SimOnly: directed patterns plus seeded random
// batches, no exact backend).
func BenchmarkVerifySim(b *testing.B) {
	pc, mres := verifyPair(b)
	opts := verify.Options{SimOnly: true}
	var vectors, inputs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Equivalent(context.Background(), pc.DAG, mres.Netlist, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Equivalent {
			b.Fatalf("benchmark pair inequivalent: %s", rep)
		}
		vectors, inputs = rep.VectorsSimulated, rep.Inputs
	}
	b.StopTimer()
	nsPerVector := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(vectors)
	b.ReportMetric(float64(vectors), "vectors")
	b.ReportMetric(nsPerVector, "ns/vector")
	writeVerifyBench(b, "sim", map[string]any{
		"bench":         "spla-dag-vs-netlist",
		"scale":         benchScale,
		"inputs":        inputs,
		"vectors":       vectors,
		"ns_per_vector": nsPerVector,
		"ns_per_check":  b.Elapsed().Nanoseconds() / int64(b.N),
	})
}

// BenchmarkVerifyBDD measures the full proof: simulation phase plus
// the hash-consed ROBDD backend running to equal roots.
func BenchmarkVerifyBDD(b *testing.B) {
	pc, mres := verifyPair(b)
	var nodes, inputs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Equivalent(context.Background(), pc.DAG, mres.Netlist, verify.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Proven || rep.Method != verify.MethodBDD {
			b.Fatalf("expected a BDD proof, got %s", rep)
		}
		nodes, inputs = rep.BDDNodes, rep.Inputs
	}
	b.StopTimer()
	b.ReportMetric(float64(nodes), "bdd-nodes")
	writeVerifyBench(b, "bdd", map[string]any{
		"bench":        "spla-dag-vs-netlist",
		"scale":        benchScale,
		"inputs":       inputs,
		"bdd_nodes":    nodes,
		"ns_per_proof": b.Elapsed().Nanoseconds() / int64(b.N),
	})
}

// BenchmarkECO measures the incremental-synthesis payoff on the
// full-size TOO_LARGE class (~28k base gates): a single-gate edit at a
// fixed K, re-synthesized three ways — from scratch (subject
// placement, match enumeration, covering, fresh route), incrementally
// with the byte-identical full reroute, and incrementally with the
// territory-scoped fast reroute — plus a K re-tune against the shared
// prepared prefix. Writes BENCH_eco.json; the headline is the
// from-scratch/fast-ECO wall-clock ratio (the acceptance bar is 10×).
func BenchmarkECO(b *testing.B) {
	const k, retuneK = 0.5, 1.0
	p, err := bench.Generate(bench.TooLarge.Spec())
	if err != nil {
		b.Fatal(err)
	}
	d, err := bench.BuildSubject(p, bench.Direct, 0)
	if err != nil {
		b.Fatal(err)
	}
	area := float64(d.BaseGateCount()) * 4.6 / 0.58
	layout, err := place.NewLayout(area, 1.0, library.RowHeight)
	if err != nil {
		b.Fatal(err)
	}
	fcfg := flow.Config{
		Layout:    layout,
		Lib:       library.Default(),
		PlaceOpts: place.Options{Seed: 1, RefinePasses: 8},
		RouteOpts: experiments.RouteOpts(),
		KSchedule: []float64{k},
	}
	ctx := context.Background()
	pc, err := flow.Prepare(ctx, d, fcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := flow.PrepareMapping(ctx, pc, fcfg); err != nil {
		b.Fatal(err)
	}
	_, st, err := flow.RunStateful(ctx, pc, k, fcfg)
	if err != nil {
		b.Fatal(err)
	}
	edits := mapper.RandomEdits(st.Prep, rand.New(rand.NewSource(1)), 1)
	if len(edits.Edits) != 1 {
		b.Fatalf("wanted a single-gate edit, got %d", len(edits.Edits))
	}
	// The from-scratch side synthesizes the *edited* design, obtained
	// from one untimed incremental run.
	_, stEdited, err := flow.RunECO(ctx, pc, st, edits, fcfg)
	if err != nil {
		b.Fatal(err)
	}
	editedDAG := stEdited.Prep.DAG()
	fastCfg := fcfg
	fastCfg.FastECORoute = true

	var scratch, exact, fast, retune time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rpc, err := flow.Prepare(ctx, editedDAG, fcfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := flow.PrepareMapping(ctx, rpc, fcfg); err != nil {
			b.Fatal(err)
		}
		if _, err := flow.RunOnce(ctx, rpc, k, fcfg); err != nil {
			b.Fatal(err)
		}
		scratch += time.Since(t0)

		t0 = time.Now()
		if _, _, err := flow.RunECO(ctx, pc, st, edits, fcfg); err != nil {
			b.Fatal(err)
		}
		exact += time.Since(t0)

		t0 = time.Now()
		if _, _, err := flow.RunECO(ctx, pc, st, edits, fastCfg); err != nil {
			b.Fatal(err)
		}
		fast += time.Since(t0)

		// K re-tune: a new congestion factor against the shared
		// K-invariant prefix (no re-placement, no re-matching).
		t0 = time.Now()
		if _, _, err := flow.RunStateful(ctx, pc, retuneK, fcfg); err != nil {
			b.Fatal(err)
		}
		retune += time.Since(t0)
	}
	b.StopTimer()
	n := int64(b.N)
	speedupExact := float64(scratch) / float64(exact)
	speedupFast := float64(scratch) / float64(fast)
	b.ReportMetric(scratch.Seconds()/float64(b.N), "scratch-s")
	b.ReportMetric(exact.Seconds()/float64(b.N), "eco-exact-s")
	b.ReportMetric(fast.Seconds()/float64(b.N), "eco-fast-s")
	b.ReportMetric(retune.Seconds()/float64(b.N), "retune-s")
	b.ReportMetric(speedupFast, "speedup-fast")
	artifact := struct {
		Bench        string  `json:"bench"`
		Gates        int     `json:"gates"`
		K            float64 `json:"k"`
		RetuneK      float64 `json:"retune_k"`
		Edits        int     `json:"edits"`
		ScratchNs    int64   `json:"from_scratch_ns"`
		EcoExactNs   int64   `json:"eco_exact_ns"`
		EcoFastNs    int64   `json:"eco_fast_ns"`
		RetuneNs     int64   `json:"retune_ns"`
		SpeedupExact float64 `json:"speedup_exact"`
		SpeedupFast  float64 `json:"speedup_fast"`
	}{
		Bench:        "too_large-single-edit",
		Gates:        d.BaseGateCount(),
		K:            k,
		RetuneK:      retuneK,
		Edits:        len(edits.Edits),
		ScratchNs:    scratch.Nanoseconds() / n,
		EcoExactNs:   exact.Nanoseconds() / n,
		EcoFastNs:    fast.Nanoseconds() / n,
		RetuneNs:     retune.Nanoseconds() / n,
		SpeedupExact: speedupExact,
		SpeedupFast:  speedupFast,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_eco.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKWay measures direct k-way partitioning with cut-driver
// replication against the recursive-bisection seed: the two bench
// circuits end to end (cut nets, Steiner cost, replicas, routed
// overflow over identical die regions) plus synthetic 100k/250k-gate
// partition-only pressure points. Writes BENCH_partition.json so the
// k-way trajectory is tracked across PRs. Set CASYN_KWAY_BENCH_FULL=1
// to add a 1M-gate pressure point.
func BenchmarkKWay(b *testing.B) {
	type namedRow struct {
		name string
		run  func() (*experiments.KWayRow, error)
	}
	cases := []namedRow{
		{"spla", func() (*experiments.KWayRow, error) {
			return experiments.KWayVsBisect(context.Background(), bench.SPLA, benchScale, 2, 1)
		}},
		{"pdc", func() (*experiments.KWayRow, error) {
			return experiments.KWayVsBisect(context.Background(), bench.PDC, benchScale, 2, 1)
		}},
		{"synthetic-100k", func() (*experiments.KWayRow, error) {
			return experiments.KWayPressure(100_000, 64, 4, 1)
		}},
		{"synthetic-250k", func() (*experiments.KWayRow, error) {
			return experiments.KWayPressure(250_000, 64, 4, 1)
		}},
	}
	if os.Getenv("CASYN_KWAY_BENCH_FULL") != "" {
		cases = append(cases, namedRow{"synthetic-1m", func() (*experiments.KWayRow, error) {
			return experiments.KWayPressure(1_000_000, 64, 4, 1)
		}})
	}
	rowBy := map[string]experiments.KWayRow{}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var row *experiments.KWayRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = c.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			if row.CutNetsKWay > row.CutNetsBisect || row.SteinerKWay > row.SteinerBisect {
				b.Fatalf("k-way scored worse than its bisection seed: %+v", *row)
			}
			b.ReportMetric(float64(row.CutNetsBisect), "cut-bisect")
			b.ReportMetric(float64(row.CutNetsKWay), "cut-kway")
			b.ReportMetric(row.SteinerBisect, "steiner-bisect")
			b.ReportMetric(row.SteinerKWay, "steiner-kway")
			b.ReportMetric(float64(row.Replicas), "replicas")
			rowBy[c.name] = *row
		})
	}
	var rows []experiments.KWayRow
	for _, c := range cases {
		if r, ok := rowBy[c.name]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return // sub-benchmark filter excluded everything
	}
	artifact := struct {
		Bench string                `json:"bench"`
		Rows  []experiments.KWayRow `json:"rows"`
	}{Bench: "kway-vs-bisect", Rows: rows}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_partition.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// Package casyn is congestion-aware logic synthesis: a self-contained
// reproduction of "Congestion-Aware Logic Synthesis" (Pandini, Pileggi,
// Strojwas — DATE 2002) with every substrate it needs built in: a
// two-level and multi-level logic optimizer, NAND2/INV decomposition, a
// standard-cell library, recursive-bisection and analytic placement, a
// congestion-driven global router, static timing analysis, and the
// paper's congestion-aware technology mapper itself.
//
// The primary entry point is Synthesize, which runs the paper's flow
// end to end:
//
//	pla, _ := casyn.ReadPLAFile("design.pla")
//	result, err := casyn.Synthesize(pla, casyn.Options{
//		K:       0.001,  // congestion minimization factor (Eq. 5)
//		DieArea: 140000, // µm²; 0 derives a die at 58% utilization
//	})
//	fmt.Println(result.Report())
//
// Lower-level control — running individual pipeline stages, sweeping
// K, reproducing the paper's tables — is available through the
// internal packages; see the examples/ directory and DESIGN.md.
package casyn

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"casyn/internal/bench"
	"casyn/internal/bnet"
	"casyn/internal/flow"
	"casyn/internal/library"
	"casyn/internal/logic"
	"casyn/internal/netlist"
	"casyn/internal/partition"
	"casyn/internal/place"
	"casyn/internal/route"
	"casyn/internal/sta"
	"casyn/internal/subject"
	"casyn/internal/verify"
)

// Options configures Synthesize.
type Options struct {
	// K is the congestion minimization factor of the paper's Eq. 5;
	// 0 reproduces DAGON-style minimum-area mapping. With Adaptive set
	// it is instead the loop's uniform baseline (0 = the calibrated
	// default, 0.001).
	K float64
	// Adaptive replaces the fixed-K mapping with the closed-loop
	// congestion controller (flow.RunAdaptive): map at a low baseline
	// K, route, inflate a spatial K-field only where the routed
	// congestion map is over capacity, and re-cover just the affected
	// region — at most 3 routed iterations instead of sweeping a K
	// ladder. Placement is seeded rather than re-annealed per
	// iteration (the controller's operating mode).
	// Result.AdaptiveIterations records the routed iterations used.
	Adaptive bool
	// Dies synthesizes for a multi-die target when > 1: the die is
	// tiled into Dies regions, the subject is partitioned directly
	// k-way with cut-driver replication (partition.KWay), and routing
	// enforces the inter-die pin budget on region-crossing nets.
	// Incompatible with Adaptive. 0 or 1 is the classic single-die
	// flow.
	Dies int
	// InterDiePinBudget caps region-crossing nets at route admission
	// when Dies > 1: 0 derives the budget from the derated boundary
	// capacity, negative disables the check.
	InterDiePinBudget int
	// DieArea fixes the floorplan in µm². When 0, the die is sized so
	// the minimum-area mapping sits at 58% utilization (the calibrated
	// operating point of the paper's experiments).
	DieArea float64
	// AspectRatio is die width/height (default 1).
	AspectRatio float64
	// OptimizeTechIndependent runs two-level minimization and
	// multi-level extraction before decomposition (the "SIS" path).
	// Off by default: the paper's methodology maps the structural
	// netlist.
	OptimizeTechIndependent bool
	// Partition selects the DAG partitioning scheme; the default is
	// the paper's placement-driven partitioning (PDP).
	Partition partition.Method
	// Seed drives all randomized tie-breaking (default 1).
	Seed int64
	// RunTiming enables static timing analysis of the routed design.
	RunTiming bool
	// IterationTimeout bounds the wall-clock time of the synthesis
	// iteration (map+place+route+sta); zero means no bound. On expiry
	// Synthesize returns a *runstage.StageError whose Timeout() method
	// reports true.
	IterationTimeout time.Duration
	// StageTimeout bounds each individual pipeline stage; zero means
	// no bound.
	StageTimeout time.Duration
	// Workers bounds the goroutines of the covering and routing
	// fan-outs — including the rip-up/reroute negotiation, which
	// routes spatially disjoint congestion regions concurrently —
	// (0 = all CPUs, 1 = serial). The result is identical for every
	// value; only wall-clock time changes.
	Workers int
	// Verify runs the combinational equivalence checker over the
	// pipeline: the decomposed subject DAG is checked against the
	// input Boolean network (when synthesis starts from a network or
	// PLA) and the mapped netlist against the subject DAG. An
	// inequivalence aborts synthesis with the counterexample in the
	// error; the proof report lands in Result.Verify.
	Verify bool
	// VerifyOpts tunes the checker when Verify is set (zero value =
	// library defaults: seeded simulation, 2^20-node BDD budget,
	// exhaustive fallback up to 20 inputs).
	VerifyOpts verify.Options
}

// Result is a completed synthesis run.
type Result struct {
	// BaseGates is the technology-independent netlist size (NAND2s and
	// inverters).
	BaseGates int
	// CellArea is the mapped cell area in µm² and NumCells the
	// instance count.
	CellArea float64
	NumCells int
	// Utilization is CellArea over die area.
	Utilization float64
	// Violations counts failed routing connections (two-pin segments
	// through over-capacity edges, the detailed-router-violation
	// analogue). Routable uses the flow's single routability
	// definition: zero failed connections AND zero raw track overflow
	// violations (route.Result.Routable, same as flow.Iteration).
	Violations int
	Routable   bool
	// WireLength is the routed wirelength in µm.
	WireLength float64
	// CriticalPathNs is the worst arrival time (only when RunTiming),
	// with the endpoints in CriticalPath.
	CriticalPathNs float64
	CriticalPath   string
	// Die is the floorplan used.
	Die place.Layout
	// Mapped is the technology-mapped netlist; use its WriteVerilog
	// and WriteCellReport methods to export it.
	Mapped *netlist.Netlist
	// Timing is the full STA result (only when RunTiming): slack
	// reports, per-endpoint arrivals, path dumps.
	Timing *sta.Result
	// Verify is the mapped-netlist equivalence report (only when
	// Options.Verify was set).
	Verify *verify.Report
	// Metrics is the iteration's observability snapshot (stage timings,
	// congestion histogram, hot spots, counters). Non-nil only when the
	// caller attached an obs.Recorder to ctx (see internal/obs).
	Metrics *flow.Metrics
	// AdaptiveIterations is the number of routed iterations the
	// closed-loop controller used (0 for fixed-K synthesis).
	AdaptiveIterations int
	// Dies echoes the multi-die region count (0 or 1 for single-die).
	Dies int
	// ReplicatedGates counts subject gates the k-way partitioner
	// duplicated across die regions (multi-die runs only).
	ReplicatedGates int
	// CrossRegionNets counts routed nets spanning more than one die
	// region (multi-die runs only).
	CrossRegionNets int
}

// Report formats the result like the paper's tables.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "base gates:        %d\n", r.BaseGates)
	fmt.Fprintf(&b, "cell area:         %.1f µm² (%d cells)\n", r.CellArea, r.NumCells)
	fmt.Fprintf(&b, "die:               %.0f µm² (%d rows), utilization %.2f%%\n",
		r.Die.Area(), r.Die.NumRows, r.Utilization*100)
	fmt.Fprintf(&b, "routing violations: %d (routable: %v)\n", r.Violations, r.Routable)
	if r.AdaptiveIterations > 0 {
		fmt.Fprintf(&b, "adaptive:          %d routed iteration(s)\n", r.AdaptiveIterations)
	}
	if r.Dies > 1 {
		fmt.Fprintf(&b, "dies:              %d (%d replicated gates, %d cross-region nets)\n",
			r.Dies, r.ReplicatedGates, r.CrossRegionNets)
	}
	fmt.Fprintf(&b, "routed wirelength: %.0f µm\n", r.WireLength)
	if r.CriticalPath != "" {
		fmt.Fprintf(&b, "critical path:     %s\n", r.CriticalPath)
	}
	if r.Verify != nil {
		fmt.Fprintf(&b, "verification:      %s\n", r.Verify)
	}
	return b.String()
}

// ReadPLAFile reads a Berkeley-format PLA from disk.
func ReadPLAFile(path string) (*logic.PLA, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return logic.ReadPLA(f)
}

// ReadPLA reads a Berkeley-format PLA from a reader.
func ReadPLA(r io.Reader) (*logic.PLA, error) { return logic.ReadPLA(r) }

// Synthesize runs the full congestion-aware flow on a PLA: Boolean
// network construction (optionally SIS-style optimized), NAND2/INV
// decomposition, technology-independent placement, congestion-aware
// technology mapping with the given K, placement, global routing, and
// optional timing.
func Synthesize(p *logic.PLA, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), p, opts)
}

// SynthesizeContext is Synthesize with cooperative cancellation: when
// ctx is canceled or its deadline expires, the pipeline stops promptly
// (within one check interval of the inner loops) and returns the ctx
// error wrapped in a *runstage.StageError identifying the stage that
// was interrupted.
func SynthesizeContext(ctx context.Context, p *logic.PLA, opts Options) (*Result, error) {
	dag, err := SubjectFor(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return SynthesizeSubjectContext(ctx, dag, opts)
}

// SubjectFor runs the technology-independent front end on a PLA:
// Boolean network construction (optionally SIS-style optimized) and
// NAND2/INV decomposition, with the front-end equivalence check when
// opts.Verify is set. It is the front half of Synthesize, exported so
// other entry points (the casynd service) share the exact same path.
func SubjectFor(ctx context.Context, p *logic.PLA, opts Options) (*subject.DAG, error) {
	style := bench.Direct
	if opts.OptimizeTechIndependent {
		style = bench.SISOptimized
	}
	dag, err := bench.BuildSubject(p, style, 0)
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		// Checks the whole technology-independent front end at once:
		// two-level minimization, extraction, and decomposition.
		rep, err := verify.Equivalent(ctx, p, dag, opts.VerifyOpts)
		if err != nil {
			return nil, err
		}
		if !rep.Equivalent {
			return nil, fmt.Errorf("casyn: technology-independent synthesis changed the function: %s", rep)
		}
	}
	return dag, nil
}

// SynthesizeNetwork runs the flow on an already-built Boolean network.
func SynthesizeNetwork(n *bnet.Network, opts Options) (*Result, error) {
	return SynthesizeNetworkContext(context.Background(), n, opts)
}

// SynthesizeNetworkContext is SynthesizeNetwork with cooperative
// cancellation (see SynthesizeContext).
func SynthesizeNetworkContext(ctx context.Context, n *bnet.Network, opts Options) (*Result, error) {
	if opts.OptimizeTechIndependent {
		bnet.FastExtract(n, bnet.FastExtractOptions{})
		n.Sweep()
	}
	dag, err := subject.Decompose(n)
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		rep, err := verify.Equivalent(ctx, n, dag, opts.VerifyOpts)
		if err != nil {
			return nil, err
		}
		if !rep.Equivalent {
			return nil, fmt.Errorf("casyn: decomposition changed the function: %s", rep)
		}
	}
	return SynthesizeSubjectContext(ctx, dag, opts)
}

// SynthesizeSubject runs placement, mapping, routing, and timing on a
// decomposed subject DAG.
func SynthesizeSubject(dag *subject.DAG, opts Options) (*Result, error) {
	return SynthesizeSubjectContext(context.Background(), dag, opts)
}

// SynthesizeSubjectContext is SynthesizeSubject with cooperative
// cancellation (see SynthesizeContext).
func SynthesizeSubjectContext(ctx context.Context, dag *subject.DAG, opts Options) (*Result, error) {
	if opts.Adaptive && opts.Dies > 1 {
		// The adaptive controller's K-field feedback is die-local; it
		// has no multi-die model yet. Fail loudly instead of silently
		// ignoring one of the two switches.
		return nil, fmt.Errorf("casyn: Adaptive and Dies > 1 are mutually exclusive")
	}
	layout, err := LayoutFor(dag, opts)
	if err != nil {
		return nil, err
	}
	cfg := FlowConfig(layout, opts)
	if opts.IterationTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.IterationTimeout)
		defer cancel()
	}
	if opts.Adaptive {
		// The closed loop runs with seeded placement: its feedback is
		// region-local, and a fresh anneal per iteration would reshuffle
		// the placement out from under the inflated windows.
		cfg.FreshPlacement = false
	}
	pc, err := flow.Prepare(ctx, dag, cfg)
	if err != nil {
		return nil, err
	}
	if opts.Dies > 1 {
		// Prepare the k-way prefix here (rather than letting RunOnce do
		// it on a private copy) so the replication outcome is visible
		// for the Result.
		if err := flow.PrepareMapping(ctx, pc, cfg); err != nil {
			return nil, err
		}
	}
	if opts.Adaptive {
		ares, err := flow.RunAdaptive(ctx, pc, cfg, flow.AdaptiveConfig{BaseK: opts.K})
		if err != nil {
			return nil, err
		}
		best := ares.Best()
		if best == nil {
			return nil, fmt.Errorf("casyn: adaptive synthesis produced no iterations")
		}
		res := ResultFrom(dag, layout, best)
		res.AdaptiveIterations = ares.RoutedIterations()
		return res, nil
	}
	it, err := flow.RunOnce(ctx, pc, opts.K, cfg)
	if err != nil {
		return nil, err
	}
	flow.MergeMetrics(ctx, it.Metrics)
	res := ResultFrom(dag, layout, &it)
	if opts.Dies > 1 {
		res.Dies = opts.Dies
		res.CrossRegionNets = it.CrossRegionNets
		if pc.KWay != nil {
			res.ReplicatedGates = pc.KWay.Replicas
		}
	}
	return res, nil
}

// LayoutFor sizes the floorplan for a decomposed subject DAG under
// opts: the explicit DieArea when given, else a die holding the
// base-gate estimate at the calibrated 58% utilization.
func LayoutFor(dag *subject.DAG, opts Options) (place.Layout, error) {
	if opts.AspectRatio == 0 {
		opts.AspectRatio = 1
	}
	dieArea := opts.DieArea
	if dieArea == 0 {
		// Size from the base-gate estimate at the calibrated fraction.
		dieArea = float64(dag.BaseGateCount()) * 4.6 / 0.58
	}
	return place.NewLayout(dieArea, opts.AspectRatio, library.RowHeight)
}

// FlowConfig builds the calibrated flow operating point for opts on a
// fixed layout — the exact configuration Synthesize runs, exported so
// other front ends (the casynd service) produce byte-identical
// results. The schedule is the single rung opts.K; callers sweeping K
// replace cfg.KSchedule.
func FlowConfig(layout place.Layout, opts Options) flow.Config {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return flow.Config{
		Layout:            layout,
		Method:            opts.Partition,
		Dies:              opts.Dies,
		InterDiePinBudget: opts.InterDiePinBudget,
		PlaceOpts:         place.Options{Seed: seed, RefinePasses: 8},
		RouteOpts:         route.Options{GCellSize: 26.6, RipupIterations: 6, CapacityScale: 1.98},
		FreshPlacement:    true,
		RunSTA:            opts.RunTiming,
		STAOpts:           sta.Options{},
		KSchedule:         []float64{opts.K},
		StageTimeout:      opts.StageTimeout,
		Workers:           opts.Workers,
		Verify:            opts.Verify,
		VerifyOpts:        opts.VerifyOpts,
	}
}

// ResultFrom condenses a completed flow iteration into the public
// Result shape (the assembly step of Synthesize, shared with casynd).
func ResultFrom(dag *subject.DAG, layout place.Layout, it *flow.Iteration) *Result {
	res := &Result{
		BaseGates:   dag.BaseGateCount(),
		CellArea:    it.CellArea,
		NumCells:    it.NumCells,
		Utilization: it.Utilization,
		Violations:  it.FailedConnections,
		Routable:    it.Routable,
		WireLength:  it.WireLength,
		Die:         layout,
		Mapped:      it.Netlist,
	}
	if it.Timing != nil {
		res.CriticalPathNs = it.Timing.MaxArrival
		res.CriticalPath = it.Timing.String()
		res.Timing = it.Timing
	}
	res.Verify = it.Verify
	res.Metrics = it.Metrics
	return res
}

// bnetFromPLA is a convenience re-export of bnet.FromPLA for callers
// that want to optimize the network before synthesis.
func bnetFromPLA(p *logic.PLA) (*bnet.Network, error) { return bnet.FromPLA(p) }

// FromPLA builds the multi-level Boolean network for a PLA, the input
// to SynthesizeNetwork.
func FromPLA(p *logic.PLA) (*bnet.Network, error) { return bnet.FromPLA(p) }

// Command casyn runs the congestion-aware synthesis flow end to end on
// a PLA file or a built-in benchmark class and prints the paper-style
// report: cell area, utilization, routing violations, and timing.
//
// Usage:
//
//	casyn -pla design.pla -k 0.001 -timing
//	casyn -bench spla -scale 0.1 -k 0.0005
//	casyn -bench too_large -sis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"casyn"
	"casyn/internal/bench"
	"casyn/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casyn: ")
	var (
		plaPath   = flag.String("pla", "", "Berkeley PLA file to synthesize")
		benchName = flag.String("bench", "", "built-in benchmark class: spla, pdc, too_large")
		scale     = flag.Float64("scale", 1.0, "benchmark scale factor (1.0 = full size)")
		k         = flag.Float64("k", 0, "congestion minimization factor K (Eq. 5)")
		dieArea   = flag.Float64("die", 0, "die area in µm² (0 = auto-size at 58% utilization)")
		sis       = flag.Bool("sis", false, "run SIS-style technology-independent optimization first")
		timing    = flag.Bool("timing", false, "run static timing analysis")
		method    = flag.String("partition", "pdp", "DAG partitioning: pdp, dagon, cone")
		seed      = flag.Int64("seed", 1, "placement seed")
		verilog   = flag.String("verilog", "", "write the mapped netlist as structural Verilog to FILE")
		cellRep   = flag.Bool("cells", false, "print the per-cell usage report")
	)
	flag.Parse()

	opts := casyn.Options{
		K:                       *k,
		DieArea:                 *dieArea,
		OptimizeTechIndependent: *sis,
		RunTiming:               *timing,
		Seed:                    *seed,
	}
	switch *method {
	case "pdp":
		opts.Partition = partition.PDP
	case "dagon":
		opts.Partition = partition.Dagon
	case "cone":
		opts.Partition = partition.Cone
	default:
		log.Fatalf("unknown partition method %q", *method)
	}

	var res *casyn.Result
	var err error
	switch {
	case *plaPath != "":
		p, rerr := casyn.ReadPLAFile(*plaPath)
		if rerr != nil {
			log.Fatal(rerr)
		}
		res, err = casyn.Synthesize(p, opts)
	case *benchName != "":
		class, ok := classByName(*benchName)
		if !ok {
			log.Fatalf("unknown benchmark %q (want spla, pdc, too_large)", *benchName)
		}
		spec := class.Spec()
		if *scale != 1.0 {
			spec = class.ScaledSpec(*scale)
		}
		p, gerr := bench.Generate(spec)
		if gerr != nil {
			log.Fatal(gerr)
		}
		res, err = casyn.Synthesize(p, opts)
	default:
		fmt.Fprintln(os.Stderr, "casyn: need -pla FILE or -bench NAME")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *cellRep {
		fmt.Println()
		if err := res.Mapped.WriteCellReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Mapped.WriteVerilog(f, "casyn_top"); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilog)
	}
}

func classByName(name string) (bench.Class, bool) {
	switch name {
	case "spla":
		return bench.SPLA, true
	case "pdc":
		return bench.PDC, true
	case "too_large":
		return bench.TooLarge, true
	default:
		return 0, false
	}
}

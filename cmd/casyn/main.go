// Command casyn runs the congestion-aware synthesis flow end to end on
// a PLA file or a built-in benchmark class and prints the paper-style
// report: cell area, utilization, routing violations, and timing.
//
// Usage:
//
//	casyn -pla design.pla -k 0.001 -timing
//	casyn -bench spla -scale 0.1 -k 0.0005
//	casyn -bench too_large -sis
//	casyn -bench spla -timeout 2m -stage-timeout 30s
//	casyn -pla design.pla -metrics run.jsonl -trace -pprof cpu
//	casyn -bench spla -scale 0.05 -k 0.5 -eco edits.json -eco-fast
//	casyn -bench spla -scale 0.05 -adaptive
//	casyn -bench spla -scale 0.05 -dies 4
//
// Exit codes identify the failure: 0 success, 1 generic error, 2 usage,
// 3 map stage, 4 place stage, 5 route stage, 6 sta stage, 7 timeout or
// cancellation (SIGINT). Stage failures print the stage and K value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"casyn"
	"casyn/internal/bench"
	"casyn/internal/cliobs"
	"casyn/internal/flow"
	"casyn/internal/logic"
	"casyn/internal/mapper"
	"casyn/internal/partition"
	"casyn/internal/runstage"
)

// Exit codes; the stage codes follow the pipeline order.
const (
	exitOK      = 0
	exitErr     = 1
	exitUsage   = 2
	exitMap     = 3
	exitPlace   = 4
	exitRoute   = 5
	exitSTA     = 6
	exitTimeout = 7
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "casyn: "+format+"\n", a...) }
	fs := flag.NewFlagSet("casyn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		plaPath   = fs.String("pla", "", "Berkeley PLA file to synthesize")
		benchName = fs.String("bench", "", "built-in benchmark class: spla, pdc, too_large")
		scale     = fs.Float64("scale", 1.0, "benchmark scale factor (1.0 = full size)")
		k         = fs.Float64("k", 0, "congestion minimization factor K (Eq. 5)")
		adaptive  = fs.Bool("adaptive", false, "closed-loop congestion control: steer a spatial K-field from the routed congestion map instead of fixing K (-k then sets the baseline; 0 = calibrated default)")
		dies      = fs.Int("dies", 0, "multi-die synthesis: tile the die into N regions, partition directly k-way with cut-driver replication, enforce the inter-die pin budget at routing (0/1 = single die)")
		pinBudget = fs.Int("die-pins", 0, "with -dies: inter-die pin budget on region-crossing nets (0 = derive from boundary capacity, negative = unchecked)")
		dieArea   = fs.Float64("die", 0, "die area in µm² (0 = auto-size at 58% utilization)")
		sis       = fs.Bool("sis", false, "run SIS-style technology-independent optimization first")
		timing    = fs.Bool("timing", false, "run static timing analysis")
		method    = fs.String("partition", "pdp", "DAG partitioning: pdp, dagon, cone")
		seed      = fs.Int64("seed", 1, "placement seed")
		verilog   = fs.String("verilog", "", "write the mapped netlist as structural Verilog to FILE")
		cellRep   = fs.Bool("cells", false, "print the per-cell usage report")
		timeout   = fs.Duration("timeout", 0, "overall wall-clock budget for the run (0 = none)")
		stageTO   = fs.Duration("stage-timeout", 0, "wall-clock budget per pipeline stage (0 = none)")
		// -iteration-timeout is an alias for -timeout: a casyn run is a
		// single flow iteration, so the two budgets coincide.
		iterTO  = fs.Duration("iteration-timeout", 0, "alias for -timeout (one run = one flow iteration)")
		workers = fs.Int("workers", 0, "covering/routing goroutines (0 = all CPUs, 1 = serial)")
		ecoPath = fs.String("eco", "", "after the base synthesis, apply the ECO edit-set JSON FILE incrementally and print both reports")
		ecoFast = fs.Bool("eco-fast", false, "with -eco: incremental placement and edit-scoped reroute instead of the byte-identical full place/route")
	)
	ob := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	opts := casyn.Options{
		K:                       *k,
		Adaptive:                *adaptive,
		Dies:                    *dies,
		InterDiePinBudget:       *pinBudget,
		DieArea:                 *dieArea,
		OptimizeTechIndependent: *sis,
		RunTiming:               *timing,
		Seed:                    *seed,
		StageTimeout:            *stageTO,
		Workers:                 *workers,
	}
	switch *method {
	case "pdp":
		opts.Partition = partition.PDP
	case "dagon":
		opts.Partition = partition.Dagon
	case "cone":
		opts.Partition = partition.Cone
	default:
		fail("unknown partition method %q", *method)
		return exitUsage
	}
	if *adaptive && *ecoPath != "" {
		fail("-adaptive and -eco are mutually exclusive (the ECO chain is fixed-K)")
		return exitUsage
	}
	if *dies > 1 {
		if *adaptive {
			fail("-adaptive and -dies are mutually exclusive (the K-field controller has no multi-die model)")
			return exitUsage
		}
		if *ecoPath != "" {
			fail("-eco and -dies are mutually exclusive (the ECO chain is single-die)")
			return exitUsage
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	budget := *timeout
	if budget == 0 {
		budget = *iterTO
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	ctx, finish, oerr := ob.Start(ctx)
	if oerr != nil {
		fail("%v", oerr)
		return exitErr
	}

	var p *logic.PLA
	switch {
	case *plaPath != "":
		var rerr error
		p, rerr = casyn.ReadPLAFile(*plaPath)
		if rerr != nil {
			fail("%v", rerr)
			finish()
			return exitErr
		}
	case *benchName != "":
		class, ok := classByName(*benchName)
		if !ok {
			fail("unknown benchmark %q (want spla, pdc, too_large)", *benchName)
			finish()
			return exitUsage
		}
		spec := class.Spec()
		if *scale != 1.0 {
			spec = class.ScaledSpec(*scale)
		}
		var gerr error
		p, gerr = bench.Generate(spec)
		if gerr != nil {
			fail("%v", gerr)
			finish()
			return exitErr
		}
	default:
		fail("need -pla FILE or -bench NAME")
		fs.Usage()
		finish()
		return exitUsage
	}
	var res, ecoRes *casyn.Result
	var err error
	start := time.Now()
	if *ecoPath != "" {
		res, ecoRes, err = runECO(ctx, p, *ecoPath, *ecoFast, opts)
	} else {
		res, err = casyn.SynthesizeContext(ctx, p, opts)
	}
	elapsed := time.Since(start)
	// The trace of a failed run is often the most useful one: flush the
	// observability outputs before mapping the failure to an exit code.
	ferr := finish()
	if ferr != nil {
		fail("%v", ferr)
	}
	if err != nil {
		return reportFailure(fail, err)
	}
	if ferr != nil {
		return exitErr
	}
	fmt.Fprint(stdout, res.Report())
	if ecoRes != nil {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "--- after ECO ---")
		fmt.Fprint(stdout, ecoRes.Report())
		// The artifact outputs below describe the edited design.
		res = ecoRes
	}
	fmt.Fprintf(stdout, "wall-clock:        %.2fs (workers=%d, %d CPUs)\n",
		elapsed.Seconds(), *workers, runtime.GOMAXPROCS(0))
	if *cellRep {
		fmt.Fprintln(stdout)
		if err := res.Mapped.WriteCellReport(stdout); err != nil {
			fail("%v", err)
			return exitErr
		}
	}
	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			fail("%v", err)
			return exitErr
		}
		if err := res.Mapped.WriteVerilog(f, "casyn_top"); err != nil {
			f.Close()
			fail("%v", err)
			return exitErr
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
			return exitErr
		}
		fmt.Fprintf(stdout, "wrote %s\n", *verilog)
	}
	return exitOK
}

// reportFailure prints the failure — naming the pipeline stage and K
// when known — and maps it to the documented exit code. Timeouts and
// cancellations take precedence over the stage code so scripts can
// distinguish "ran out of budget" from "this stage is broken".
func reportFailure(fail func(string, ...any), err error) int {
	se := runstage.AsStage(err)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if se != nil {
			fail("timed out in %s stage (K=%g): %v", se.Stage, se.K, se.Err)
		} else {
			fail("timed out: %v", err)
		}
		return exitTimeout
	case errors.Is(err, context.Canceled):
		if se != nil {
			fail("canceled in %s stage (K=%g): %v", se.Stage, se.K, se.Err)
		} else {
			fail("canceled: %v", err)
		}
		return exitTimeout
	case se != nil:
		fail("%s stage failed (K=%g): %v", se.Stage, se.K, se.Err)
		switch se.Stage {
		case runstage.StageMap, runstage.StageECO:
			return exitMap
		case runstage.StagePlace, runstage.StagePrepare:
			return exitPlace
		case runstage.StageRoute:
			return exitRoute
		case runstage.StageSTA:
			return exitSTA
		}
		return exitErr
	default:
		fail("%v", err)
		return exitErr
	}
}

// runECO synthesizes the base design statefully at K, then applies the
// edit-set file incrementally (flow.RunECO): only the partition trees,
// covering regions, and — with fast set — routing territories the
// edits dirtied are recomputed. Returns the base and post-ECO results.
func runECO(ctx context.Context, p *logic.PLA, path string, fast bool, opts casyn.Options) (*casyn.Result, *casyn.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	edits, err := mapper.ParseEditSet(data)
	if err != nil {
		return nil, nil, err
	}
	dag, err := casyn.SubjectFor(ctx, p, opts)
	if err != nil {
		return nil, nil, err
	}
	layout, err := casyn.LayoutFor(dag, opts)
	if err != nil {
		return nil, nil, err
	}
	cfg := casyn.FlowConfig(layout, opts)
	cfg.FastECORoute = fast
	// The ECO chain runs the paper's seeded-placement methodology: the
	// mapper's center-of-mass seeds are legalized rather than re-placed
	// by bisection, so the captured placement state is reusable — fast
	// mode keeps unmoved cells verbatim and the routing dirty region
	// stays local to the edit.
	cfg.FreshPlacement = false
	pc, err := flow.Prepare(ctx, dag, cfg)
	if err != nil {
		return nil, nil, err
	}
	it, st, err := flow.RunStateful(ctx, pc, opts.K, cfg)
	flow.MergeMetrics(ctx, it.Metrics)
	if err != nil {
		return nil, nil, err
	}
	base := casyn.ResultFrom(dag, layout, &it)
	eit, _, err := flow.RunECO(ctx, pc, st, edits, cfg)
	flow.MergeMetrics(ctx, eit.Metrics)
	if err != nil {
		return base, nil, err
	}
	return base, casyn.ResultFrom(dag, layout, &eit), nil
}

func classByName(name string) (bench.Class, bool) {
	switch name {
	case "spla":
		return bench.SPLA, true
	case "pdc":
		return bench.PDC, true
	case "too_large":
		return bench.TooLarge, true
	default:
		return 0, false
	}
}

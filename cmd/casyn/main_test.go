package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casyn/internal/obs"
)

const add2PLA = "../../examples/circuits/add2.pla"

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestMetricsFlagEmitsJSONL is the CLI acceptance test: -metrics on an
// example circuit must emit valid JSONL with at least one span per
// pipeline stage and a congestion histogram.
func TestMetricsFlagEmitsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	code, out, errb := runCLI(t, "-pla", add2PLA, "-k", "0.001", "-metrics", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout %q, stderr %q)", code, out, errb)
	}
	if !strings.Contains(out, "routing violations") {
		t.Errorf("report missing from stdout: %q", out)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("metrics file is not valid JSONL: %v", err)
	}
	counts := snap.SpanCounts()
	for _, stage := range []string{"stage.prepare", "stage.map", "stage.place", "stage.route"} {
		if counts[stage] < 1 {
			t.Errorf("no %q span in metrics (have %v)", stage, counts)
		}
	}
	if counts["flow.iteration"] < 1 {
		t.Error("no flow.iteration span in metrics")
	}
	h, ok := snap.Histograms["route.congestion"]
	if !ok {
		t.Fatal("no congestion histogram in metrics")
	}
	if h.Count == 0 || len(h.Counts) != len(h.Bounds)+1 {
		t.Errorf("degenerate congestion histogram: %+v", h)
	}
	if snap.Counters["route.nets"] == 0 {
		t.Error("route.nets counter missing or zero")
	}
}

// TestPromAndPprofFlags checks the Prometheus dump and profile capture
// land on disk.
func TestPromAndPprofFlags(t *testing.T) {
	dir := t.TempDir()
	prom := filepath.Join(dir, "metrics.prom")
	pprof := filepath.Join(dir, "cpu.pprof")
	code, _, errb := runCLI(t, "-pla", add2PLA, "-prom", prom, "-pprof", "cpu", "-pprof-out", pprof)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr %q)", code, errb)
	}
	pb, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"casyn_route_nets_total", "casyn_route_congestion_bucket", "casyn_span_seconds_sum"} {
		if !strings.Contains(string(pb), want) {
			t.Errorf("prom dump missing %q", want)
		}
	}
	if _, err := os.Stat(pprof); err != nil {
		t.Errorf("cpu profile not written: %v", err)
	}
}

// TestMetricsOfFailedRunStillFlush checks the failure path: a stage
// that times out must still leave its partial metrics on disk, with
// the error recorded on the span.
func TestMetricsOfFailedRunStillFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	// 1ns budget: prepare cannot finish.
	code, _, _ := runCLI(t, "-pla", add2PLA, "-stage-timeout", "1ns", "-metrics", path)
	if code != exitTimeout {
		t.Fatalf("exit = %d, want %d", code, exitTimeout)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("metrics of failed run not valid JSONL: %v", err)
	}
	found := false
	for _, sp := range snap.Spans {
		if strings.HasPrefix(sp.Name, "stage.") && sp.Err != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no failed stage span recorded: %+v", snap.Spans)
	}
}

// TestUsageErrors pins the usage exit paths.
func TestUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"no input":      {},
		"bad bench":     {"-bench", "nonesuch"},
		"bad partition": {"-pla", add2PLA, "-partition", "nonesuch"},
		"bad flag":      {"-definitely-not-a-flag"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if code, _, _ := runCLI(t, args...); code != exitUsage {
				t.Errorf("exit = %d, want %d", code, exitUsage)
			}
		})
	}
	if code, _, _ := runCLI(t, "-pla", add2PLA, "-pprof", "flames"); code != exitErr {
		t.Errorf("invalid -pprof mode: exit != %d", exitErr)
	}
}

// TestVerilogExportUnchangedByMetrics re-checks observability inertness
// at the CLI level: the exported Verilog is byte-identical with and
// without -metrics.
func TestVerilogExportUnchangedByMetrics(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.v")
	instr := filepath.Join(dir, "instr.v")
	if code, _, errb := runCLI(t, "-pla", add2PLA, "-verilog", plain); code != 0 {
		t.Fatalf("plain run failed: %s", errb)
	}
	if code, _, errb := runCLI(t, "-pla", add2PLA, "-verilog", instr,
		"-metrics", filepath.Join(dir, "m.jsonl")); code != 0 {
		t.Fatalf("instrumented run failed: %s", errb)
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(instr)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("-metrics changed the exported Verilog")
	}
}

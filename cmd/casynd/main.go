// Command casynd is the synthesis-as-a-service daemon: the
// congestion-aware flow behind an HTTP/JSON API with a bounded job
// queue, admission control, per-job deadlines and panic isolation,
// cross-request caching of the K-invariant mapping prefix, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	casynd -addr :8080
//	casynd -addr :8080 -workers 4 -queue 128 -job-timeout 5m -retries 2
//	casynd -addr 127.0.0.1:0 -metrics drain.jsonl
//
// Submit a job and fetch its result:
//
//	curl -s -X POST localhost:8080/jobs -d '{"bench":"spla","scale":0.05,"k":0.5}'
//	curl -s localhost:8080/jobs/j000001/result
//
// Apply an incremental ECO against a completed job (the edits are
// re-synthesized against the cached lineage, recomputing only what
// they dirtied):
//
//	curl -s -X POST localhost:8080/jobs/j000001/eco \
//	  -d '{"edits":[{"op":"nudge","gate":12,"dx":5,"dy":0}]}'
//
// The daemon prints "listening on ADDR" to stdout once the socket is
// bound (with the resolved port when -addr asked for :0), then serves
// until SIGINT/SIGTERM, at which point it stops admitting jobs,
// finishes the ones in flight (bounded by -drain-timeout), flushes the
// metrics snapshot, and exits.
//
// Exit codes: 0 clean shutdown, 1 runtime error, 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"casyn/internal/serve"
)

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "casynd: "+format+"\n", a...) }
	fs := flag.NewFlagSet("casynd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		queue   = fs.Int("queue", 64, "job queue capacity (admission control bound)")
		workers = fs.Int("workers", 2, "concurrent job executors")
		jobW    = fs.Int("job-workers", 1, "default per-job pipeline fan-out (spec 'workers' overrides)")
		jobTO   = fs.Duration("job-timeout", 0, "default per-job wall-clock budget (0 = none)")
		stageTO = fs.Duration("stage-timeout", 0, "default per-stage budget (0 = none)")
		drainTO = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain window on shutdown")
		retries = fs.Int("retries", 0, "retry budget for transiently-failed jobs")
		prepC   = fs.Int("prepared-cache", 32, "prepared-prefix cache entries (-1 disables)")
		resC    = fs.Int("result-cache", 256, "result cache entries (-1 disables)")
		maxJobs = fs.Int("max-jobs", 4096, "in-memory job table bound (oldest finished jobs evicted)")
		metrics = fs.String("metrics", "", "write the final metrics snapshot as JSONL to FILE at shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fail("unexpected arguments: %v", fs.Args())
		fs.Usage()
		return exitUsage
	}
	if *queue <= 0 || *workers <= 0 {
		fail("-queue and -workers must be positive")
		return exitUsage
	}

	cfg := serve.Config{
		QueueCap:          *queue,
		Workers:           *workers,
		JobWorkers:        *jobW,
		JobTimeout:        *jobTO,
		StageTimeout:      *stageTO,
		DrainTimeout:      *drainTO,
		Retries:           *retries,
		PreparedCacheSize: *prepC,
		ResultCacheSize:   *resC,
		MaxJobs:           *maxJobs,
	}
	var metricsFile *os.File
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fail("%v", err)
			return exitErr
		}
		metricsFile = f
		cfg.MetricsSink = f
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
		if metricsFile != nil {
			metricsFile.Close()
		}
		return exitErr
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	code := exitOK
	select {
	case err := <-serveErr:
		// The listener died under us; drain what we have and report.
		fail("%v", err)
		code = exitErr
	case <-ctx.Done():
		fmt.Fprintf(stdout, "draining (window %s)\n", *drainTO)
	}

	// Stop admitting first (Drain flips the flag synchronously), then
	// close the listener so in-flight HTTP requests finish cleanly.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(drainCtx) }()

	shutCtx, shutCancel := context.WithTimeout(context.Background(), *drainTO+5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("http shutdown: %v", err)
		code = exitErr
	}
	if err := <-drainDone; err != nil {
		fail("drain: %v", err)
		code = exitErr
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fail("%v", err)
			code = exitErr
		} else if code == exitOK {
			fmt.Fprintf(stdout, "wrote %s\n", *metrics)
		}
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return code
}

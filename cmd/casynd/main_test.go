package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"positional"},
		{"-queue", "0"},
		{"-workers", "-1"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		code := run(context.Background(), args, &out, &errb)
		if code != exitUsage {
			t.Errorf("args %v: exit %d, want %d (stderr %q)", args, code, exitUsage, errb.String())
		}
	}
}

func TestBadListenAddr(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &out, &errb)
	if code != exitErr {
		t.Fatalf("exit %d, want %d", code, exitErr)
	}
	if errb.Len() == 0 {
		t.Fatal("expected an error message on stderr")
	}
}

// lineWatcher is an io.Writer that signals when a "listening on ADDR"
// line arrives, exposing the resolved address.
type lineWatcher struct {
	mu    sync.Mutex
	buf   strings.Builder
	addr  string
	ready chan struct{}
}

func newLineWatcher() *lineWatcher { return &lineWatcher{ready: make(chan struct{})} }

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if w.addr == "" {
		for _, line := range strings.Split(w.buf.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				w.addr = strings.TrimSpace(rest)
				close(w.ready)
				break
			}
		}
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSubmitDrain boots the daemon on a free port, submits a tiny
// job over HTTP, fetches its result, then drains via context
// cancellation (the SIGINT path) and checks the metrics file.
func TestServeSubmitDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the daemon and runs a synthesis job")
	}
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "drain.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := newLineWatcher()
	var errb strings.Builder
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-drain-timeout", "30s",
			"-metrics", metricsPath,
		}, out, &errb)
	}()

	select {
	case <-out.ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never announced its address; stderr %q", errb.String())
	}
	base := "http://" + out.addr

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"bench":"spla","scale":0.02,"k":0}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", base, sub.ID))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var body struct {
				Status string `json:"status"`
				Result *struct {
					Report string `json:"report"`
				} `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if body.Status != "done" || body.Result == nil || body.Result.Report == "" {
				t.Fatalf("unexpected terminal body: %+v", body)
			}
			break
		}
		resp.Body.Close()
		time.Sleep(50 * time.Millisecond)
	}

	cancel() // the SIGINT path
	select {
	case code := <-codeCh:
		if code != exitOK {
			t.Fatalf("exit %d, want 0; stderr %q", code, errb.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after cancellation")
	}
	if !strings.Contains(out.String(), "shutdown complete") {
		t.Errorf("stdout missing shutdown message:\n%s", out.String())
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	if !strings.Contains(string(data), "serve.jobs_completed") {
		t.Errorf("metrics file missing job counters:\n%s", data)
	}
}

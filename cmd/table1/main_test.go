package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestTableRuns checks the happy path at test scale.
func TestTableRuns(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "0.08")
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stderr %q)", code, exitOK, errb)
	}
	for _, want := range []string{"Table 1", "SIS", "DAGON"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q: %q", want, out)
		}
	}
}

// TestFlushFailureKeepsPipelineExitCode is the cliobs satellite's
// regression: an unwritable -metrics path must be reported on stderr
// without clobbering the successful pipeline's report, and the flush
// failure alone decides the nonzero exit.
func TestFlushFailureKeepsPipelineExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "metrics.jsonl")
	code, out, errb := runCLI(t, "-scale", "0.08", "-metrics", bad)
	if code != exitErr {
		t.Fatalf("exit = %d, want %d (stderr %q)", code, exitErr, errb)
	}
	if !strings.Contains(errb, "no-such-dir") {
		t.Errorf("flush error not reported on stderr: %q", errb)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("flush failure clobbered the report: %q", out)
	}
}

// TestUsageErrors pins the usage exit path.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "-definitely-not-a-flag"); code != exitUsage {
		t.Errorf("exit = %d, want %d", code, exitUsage)
	}
}

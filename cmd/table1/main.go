// Command table1 reproduces the paper's Table 1: the TOO_LARGE circuit
// synthesized with SIS-style optimization versus the
// structure-preserving DAGON mapping, both placed and routed in the
// same fixed die.
//
// Usage:
//
//	table1
//	table1 -scale 0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"casyn/internal/cliobs"
	"casyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table1: ")
	scale := flag.Float64("scale", 1.0, "benchmark scale factor")
	ob := cliobs.Register(nil)
	flag.Parse()

	ctx, finish, oerr := ob.Start(context.Background())
	if oerr != nil {
		log.Fatal(oerr)
	}
	rows, layout, err := experiments.Table1(ctx, *scale)
	if ferr := finish(); ferr != nil {
		log.Print(ferr)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: TOO_LARGE routing results")
	fmt.Printf("die %.0f µm², %d rows, 3 metal layers\n\n", layout.Area(), layout.NumRows)
	fmt.Printf("%-7s %-12s %-8s %-14s %-10s\n", "", "Cell Area", "No. of", "Area", "Routing")
	fmt.Printf("%-7s %-12s %-8s %-14s %-10s\n", "", "(µm²)", "Rows", "Utilization%", "violations")
	for _, r := range rows {
		fmt.Printf("%-7s %-12.0f %-8d %-14.2f %-10d\n",
			r.Label, r.CellArea, r.NumRows, r.Utilization*100, r.Violations)
	}
	fmt.Println("\nNote: the cell-area relation (SIS < DAGON) reproduces the paper;")
	fmt.Println("the routability inversion does not in this substrate — see EXPERIMENTS.md.")
}

// Command table1 reproduces the paper's Table 1: the TOO_LARGE circuit
// synthesized with SIS-style optimization versus the
// structure-preserving DAGON mapping, both placed and routed in the
// same fixed die.
//
// Usage:
//
//	table1
//	table1 -scale 0.2
//
// Exit codes: 0 success, 1 error (including a failed -metrics/-trace
// flush after an otherwise clean run), 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"casyn/internal/cliobs"
	"casyn/internal/experiments"
)

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "table1: "+format+"\n", a...) }
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "benchmark scale factor")
	ob := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, oerr := ob.Start(ctx)
	if oerr != nil {
		fail("%v", oerr)
		return exitErr
	}
	rows, layout, err := experiments.Table1(ctx, *scale)
	// Flush the observability outputs first, but let the pipeline's own
	// failure decide the exit code; a flush failure alone exits 1.
	ferr := finish()
	if ferr != nil {
		fail("%v", ferr)
	}
	if err != nil {
		fail("%v", err)
		return exitErr
	}
	fmt.Fprintln(stdout, "Table 1: TOO_LARGE routing results")
	fmt.Fprintf(stdout, "die %.0f µm², %d rows, 3 metal layers\n\n", layout.Area(), layout.NumRows)
	fmt.Fprintf(stdout, "%-7s %-12s %-8s %-14s %-10s\n", "", "Cell Area", "No. of", "Area", "Routing")
	fmt.Fprintf(stdout, "%-7s %-12s %-8s %-14s %-10s\n", "", "(µm²)", "Rows", "Utilization%", "violations")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-7s %-12.0f %-8d %-14.2f %-10d\n",
			r.Label, r.CellArea, r.NumRows, r.Utilization*100, r.Violations)
	}
	fmt.Fprintln(stdout, "\nNote: the cell-area relation (SIS < DAGON) reproduces the paper;")
	fmt.Fprintln(stdout, "the routability inversion does not in this substrate — see EXPERIMENTS.md.")
	if ferr != nil {
		return exitErr
	}
	return exitOK
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const parityPLA = `
.i 3
.o 1
.ilb a b c
.ob odd
.p 4
001 1
010 1
100 1
111 1
.e
`

// parityBLIF is the same function as a Boolean network (a ^ b ^ c),
// exercising the mixed-format path.
const parityBLIF = `
.model parity
.inputs a b c
.outputs odd
.names a b ab
10 1
01 1
.names ab c odd
10 1
01 1
.end
`

// notParityPLA drops one minterm.
const notParityPLA = `
.i 3
.o 1
.ilb a b c
.ob odd
.p 3
001 1
010 1
100 1
.e
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunProvenEquivalent(t *testing.T) {
	t.Parallel()
	a := writeFile(t, "a.pla", parityPLA)
	b := writeFile(t, "b.blif", parityBLIF)
	code, out, _ := runCLI(t, a, b)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (output %q)", code, out)
	}
	if !strings.Contains(out, "equivalent") || strings.Contains(out, "NOT") {
		t.Errorf("unexpected verdict: %q", out)
	}
}

func TestRunCounterexample(t *testing.T) {
	t.Parallel()
	a := writeFile(t, "a.pla", parityPLA)
	b := writeFile(t, "b.pla", notParityPLA)
	code, out, _ := runCLI(t, a, b)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (output %q)", code, out)
	}
	if !strings.Contains(out, "counterexample") {
		t.Errorf("no counterexample in output: %q", out)
	}
}

func TestRunSimOnlyUnproven(t *testing.T) {
	t.Parallel()
	a := writeFile(t, "a.pla", parityPLA)
	b := writeFile(t, "b.blif", parityBLIF)
	code, out, _ := runCLI(t, "-sim-only", a, b)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (output %q)", code, out)
	}
	if !strings.Contains(out, "unproven") {
		t.Errorf("verdict not marked unproven: %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	good := writeFile(t, "good.pla", parityPLA)
	cases := map[string][]string{
		"no args":          {},
		"one arg":          {good},
		"missing file":     {good, filepath.Join(t.TempDir(), "absent.pla")},
		"bad extension":    {good, writeFile(t, "x.v", "module x; endmodule")},
		"bad flag":         {"-definitely-not-a-flag", good, good},
		"unparsable input": {good, writeFile(t, "broken.pla", ".i 2\n.o 1\nnot a term\n")},
	}
	for name, args := range cases {
		name, args := name, args
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if code, out, _ := runCLI(t, args...); code != 3 {
				t.Errorf("exit = %d, want 3 (output %q)", code, out)
			}
		})
	}
}

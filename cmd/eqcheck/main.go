// Command eqcheck proves or refutes combinational equivalence between
// two circuit descriptions (Berkeley PLA or BLIF, selected by file
// extension), aligning inputs and outputs by name.
//
//	eqcheck a.pla b.blif
//	eqcheck -sim-only -vectors 256 golden.pla mapped.pla
//
// Exit codes: 0 proven equivalent, 1 not equivalent (a counterexample
// vector is printed), 2 no mismatch found but unproven (the exact
// engines were out of budget), 3 usage or read error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"casyn/internal/bnet"
	"casyn/internal/logic"
	"casyn/internal/verify"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eqcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "simulation PRNG seed")
	vectors := fs.Int("vectors", 64, "random simulation batches (64 vectors each)")
	budget := fs.Int("bdd-budget", 1<<20, "ROBDD node budget before the exhaustive fallback")
	maxExh := fs.Int("max-exhaustive", 20, "max inputs for exhaustive enumeration")
	simOnly := fs.Bool("sim-only", false, "skip the exact engines (result is never a proof)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: eqcheck [flags] <a.pla|a.blif> <b.pla|b.blif>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 3
	}
	a, err := readCircuit(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "eqcheck:", err)
		return 3
	}
	b, err := readCircuit(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "eqcheck:", err)
		return 3
	}
	rep, err := verify.Equivalent(ctx, a, b, verify.Options{
		Seed:                *seed,
		RandomBatches:       *vectors,
		BDDNodeBudget:       *budget,
		MaxExhaustiveInputs: *maxExh,
		SimOnly:             *simOnly,
	})
	if err != nil {
		fmt.Fprintln(stderr, "eqcheck:", err)
		return 3
	}
	fmt.Fprintln(stdout, rep)
	switch {
	case !rep.Equivalent:
		return 1
	case !rep.Proven:
		return 2
	default:
		return 0
	}
}

// readCircuit loads a circuit file, dispatching on extension: .pla is
// a Berkeley PLA, .blif a Boolean network.
func readCircuit(path string) (any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".pla":
		p, err := logic.ReadPLA(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return p, nil
	case ".blif":
		n, err := bnet.ReadBLIF(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%s: unsupported extension %q (want .pla or .blif)", path, ext)
	}
}

// Command benchgen emits the synthetic benchmark circuits as Berkeley
// PLA files so they can be inspected or fed to other tools.
//
// Usage:
//
//	benchgen -out ./benchmarks
//	benchgen -bench spla -scale 0.1 -out .
//
// Exit codes: 0 success, 1 generation or I/O error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"

	"casyn/internal/bench"
)

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "benchgen: "+format+"\n", a...) }
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		outDir    = fs.String("out", ".", "output directory")
		benchName = fs.String("bench", "", "single class to emit (spla, pdc); default: all PLA classes")
		scale     = fs.Float64("scale", 1.0, "benchmark scale factor")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fail("unexpected arguments: %v", fs.Args())
		fs.Usage()
		return exitUsage
	}

	classes := []bench.Class{bench.SPLA, bench.PDC}
	if *benchName != "" {
		switch *benchName {
		case "spla":
			classes = []bench.Class{bench.SPLA}
		case "pdc":
			classes = []bench.Class{bench.PDC}
		default:
			fail("unknown benchmark %q (want spla or pdc; too_large is a layered netlist, not a PLA)", *benchName)
			return exitUsage
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail("%v", err)
		return exitErr
	}
	for _, class := range classes {
		if err := ctx.Err(); err != nil {
			fail("canceled: %v", err)
			return exitErr
		}
		spec := class.Spec()
		if *scale != 1.0 {
			spec = class.ScaledSpec(*scale)
		}
		p, err := bench.Generate(spec)
		if err != nil {
			fail("%v", err)
			return exitErr
		}
		path := filepath.Join(*outDir, spec.Name+".pla")
		f, err := os.Create(path)
		if err != nil {
			fail("%v", err)
			return exitErr
		}
		if err := p.Write(f); err != nil {
			f.Close()
			fail("%v", err)
			return exitErr
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
			return exitErr
		}
		s := p.Stats()
		fmt.Fprintf(stdout, "%s: %d inputs, %d outputs, %d terms, %d literals\n",
			path, s.Inputs, s.Outputs, s.Terms, s.Literals)
	}
	return exitOK
}

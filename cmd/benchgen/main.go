// Command benchgen emits the synthetic benchmark circuits as Berkeley
// PLA files so they can be inspected or fed to other tools, and the
// paper-scale routing benchmarks (placed netlists, 100k–1M gates) as
// plain-text placement+netlist dumps.
//
// Usage:
//
//	benchgen -out ./benchmarks
//	benchgen -bench spla -scale 0.1 -out .
//	benchgen -route 100000 -out ./benchmarks
//	benchgen -route-ladder -out ./benchmarks
//
// Exit codes: 0 success, 1 generation or I/O error, 2 usage.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"

	"casyn/internal/bench"
)

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "benchgen: "+format+"\n", a...) }
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		outDir      = fs.String("out", ".", "output directory")
		benchName   = fs.String("bench", "", "single class to emit (spla, pdc); default: all PLA classes")
		scale       = fs.Float64("scale", 1.0, "benchmark scale factor")
		routeGates  = fs.Int("route", 0, "emit the paper-scale routing benchmark for this gate count instead of PLAs")
		routeLadder = fs.Bool("route-ladder", false, "emit the full routing benchmark ladder (100k, 250k, 1M gates)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fail("unexpected arguments: %v", fs.Args())
		fs.Usage()
		return exitUsage
	}
	if *routeGates != 0 || *routeLadder {
		if *benchName != "" {
			fail("-route/-route-ladder and -bench are mutually exclusive")
			return exitUsage
		}
		specs := bench.PaperRouteSpecs()
		if *routeGates != 0 {
			specs = []bench.RouteSpec{bench.RouteSpecAt(*routeGates)}
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail("%v", err)
			return exitErr
		}
		for _, spec := range specs {
			if err := ctx.Err(); err != nil {
				fail("canceled: %v", err)
				return exitErr
			}
			if err := emitRoute(spec, *outDir, stdout); err != nil {
				fail("%v", err)
				return exitErr
			}
		}
		return exitOK
	}

	classes := []bench.Class{bench.SPLA, bench.PDC}
	if *benchName != "" {
		switch *benchName {
		case "spla":
			classes = []bench.Class{bench.SPLA}
		case "pdc":
			classes = []bench.Class{bench.PDC}
		default:
			fail("unknown benchmark %q (want spla or pdc; too_large is a layered netlist, not a PLA)", *benchName)
			return exitUsage
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail("%v", err)
		return exitErr
	}
	for _, class := range classes {
		if err := ctx.Err(); err != nil {
			fail("canceled: %v", err)
			return exitErr
		}
		spec := class.Spec()
		if *scale != 1.0 {
			spec = class.ScaledSpec(*scale)
		}
		p, err := bench.Generate(spec)
		if err != nil {
			fail("%v", err)
			return exitErr
		}
		path := filepath.Join(*outDir, spec.Name+".pla")
		f, err := os.Create(path)
		if err != nil {
			fail("%v", err)
			return exitErr
		}
		if err := p.Write(f); err != nil {
			f.Close()
			fail("%v", err)
			return exitErr
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
			return exitErr
		}
		s := p.Stats()
		fmt.Fprintf(stdout, "%s: %d inputs, %d outputs, %d terms, %d literals\n",
			path, s.Inputs, s.Outputs, s.Terms, s.Literals)
	}
	return exitOK
}

// emitRoute generates one paper-scale routing benchmark and writes it
// as a plain-text placed netlist: a header with the die geometry, one
// `cell i x y w` line per placed cell, one `net c1 c2 ...` line per
// hyperedge. The format is deliberately trivial — these dumps exist so
// other routers can be pointed at the exact circuits BENCH_route.json
// was measured on.
func emitRoute(spec bench.RouteSpec, outDir string, stdout io.Writer) error {
	nl, pl, layout, err := spec.Generate()
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, spec.Name+".routebench")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintf(w, "# casyn routing benchmark %s (deterministic, seed %#x)\n", spec.Name, spec.Seed)
	fmt.Fprintf(w, "die %g %g %g %g rowheight %g\n",
		layout.Die.Min.X, layout.Die.Min.Y, layout.Die.Max.X, layout.Die.Max.Y, layout.RowHeight)
	fmt.Fprintf(w, "cells %d nets %d\n", len(nl.Widths), len(nl.Nets))
	for i, width := range nl.Widths {
		fmt.Fprintf(w, "cell %d %g %g %g\n", i, pl.Pos[i].X, pl.Pos[i].Y, width)
	}
	for _, n := range nl.Nets {
		w.WriteString("net")
		for _, c := range n.Cells {
			fmt.Fprintf(w, " %d", c)
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %d cells, %d nets\n", path, len(nl.Widths), len(nl.Nets))
	return nil
}

// Command benchgen emits the synthetic benchmark circuits as Berkeley
// PLA files so they can be inspected or fed to other tools.
//
// Usage:
//
//	benchgen -out ./benchmarks
//	benchgen -bench spla -scale 0.1 -out .
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"casyn/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	var (
		outDir    = flag.String("out", ".", "output directory")
		benchName = flag.String("bench", "", "single class to emit (spla, pdc); default: all PLA classes")
		scale     = flag.Float64("scale", 1.0, "benchmark scale factor")
	)
	flag.Parse()

	classes := []bench.Class{bench.SPLA, bench.PDC}
	if *benchName != "" {
		switch *benchName {
		case "spla":
			classes = []bench.Class{bench.SPLA}
		case "pdc":
			classes = []bench.Class{bench.PDC}
		default:
			log.Fatalf("unknown benchmark %q (want spla or pdc; too_large is a layered netlist, not a PLA)", *benchName)
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, class := range classes {
		spec := class.Spec()
		if *scale != 1.0 {
			spec = class.ScaledSpec(*scale)
		}
		p, err := bench.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, spec.Name+".pla")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Write(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		s := p.Stats()
		fmt.Printf("%s: %d inputs, %d outputs, %d terms, %d literals\n",
			path, s.Inputs, s.Outputs, s.Terms, s.Literals)
	}
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casyn/internal/logic"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-bench", "nope"},
		{"positional"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != exitUsage {
			t.Errorf("args %v: exit %d, want %d (stderr %q)", args, code, exitUsage, stderr)
		}
	}
}

func TestUnwritableOutDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// MkdirAll over an existing regular file must fail.
	code, _, stderr := runCLI(t, "-out", filepath.Join(blocker, "sub"))
	if code != exitErr {
		t.Fatalf("exit %d, want %d (stderr %q)", code, exitErr, stderr)
	}
	if stderr == "" {
		t.Fatal("expected an error message on stderr")
	}
}

func TestEmitSingleBench(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-bench", "spla", "-scale", "0.02", "-out", dir)
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, stderr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("emitted %d files, want 1", len(entries))
	}
	path := filepath.Join(dir, entries[0].Name())
	if !strings.Contains(stdout, path) {
		t.Errorf("stdout %q does not mention %s", stdout, path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := logic.ReadPLA(f)
	if err != nil {
		t.Fatalf("emitted PLA does not parse: %v", err)
	}
	if s := p.Stats(); s.Terms == 0 {
		t.Error("emitted PLA has no terms")
	}
}

func TestEmitAllClasses(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-scale", "0.02", "-out", dir)
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, stderr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("emitted %d files, want 2 (spla + pdc)", len(entries))
	}
	if lines := strings.Count(stdout, "\n"); lines != 2 {
		t.Errorf("stdout has %d lines, want 2:\n%s", lines, stdout)
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{"-out", t.TempDir()}, &out, &errb)
	if code != exitErr {
		t.Fatalf("exit %d, want %d", code, exitErr)
	}
	if !strings.Contains(errb.String(), "canceled") {
		t.Errorf("stderr %q does not mention cancellation", errb.String())
	}
}

func TestEmitRouteBenchmark(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-route", "2000", "-out", dir)
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, stderr)
	}
	path := filepath.Join(dir, "route-2k.routebench")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "cells 2000 ") {
		t.Errorf("dump missing cells header:\n%.200s", text)
	}
	if !strings.Contains(text, "\nnet ") || !strings.Contains(text, "\ncell 1999 ") {
		t.Error("dump missing cell or net records")
	}
	if !strings.Contains(stdout, "2000 cells") {
		t.Errorf("stdout %q missing summary", stdout)
	}
	// Determinism: a second emission is byte-identical.
	dir2 := t.TempDir()
	if code, _, stderr := runCLI(t, "-route", "2000", "-out", dir2); code != exitOK {
		t.Fatalf("second run: exit %d (stderr %q)", code, stderr)
	}
	again, err := os.ReadFile(filepath.Join(dir2, "route-2k.routebench"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != text {
		t.Error("route benchmark emission is not deterministic")
	}
}

func TestRouteAndBenchExclusive(t *testing.T) {
	code, _, _ := runCLI(t, "-route", "2000", "-bench", "spla")
	if code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
}

// Command timing reproduces the paper's Table 3 (SPLA) and Table 5
// (PDC): static timing analysis of the K=0 mapping, a routable mid-K
// mapping, and the SIS baseline, each routed in the smallest die that
// accepts it.
//
// Usage:
//
//	timing -bench spla           # full-size Table 3 (a few minutes)
//	timing -bench pdc -midk 0.001
//
// Exit codes: 0 success, 1 error (including a failed -metrics/-trace
// flush after an otherwise clean run), 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"casyn/internal/bench"
	"casyn/internal/cliobs"
	"casyn/internal/experiments"
)

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "timing: "+format+"\n", a...) }
	fs := flag.NewFlagSet("timing", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "spla", "benchmark class: spla or pdc")
		scale     = fs.Float64("scale", 1.0, "benchmark scale factor")
		midK      = fs.Float64("midk", 0.001, "mid-ladder K for the congestion-aware row")
		workers   = fs.Int("workers", 0, "covering/routing goroutines (0 = all CPUs, 1 = serial)")
	)
	ob := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	var class bench.Class
	switch *benchName {
	case "spla":
		class = bench.SPLA
	case "pdc":
		class = bench.PDC
	default:
		fail("unknown benchmark %q (want spla or pdc)", *benchName)
		return exitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, oerr := ob.Start(ctx)
	if oerr != nil {
		fail("%v", oerr)
		return exitErr
	}
	start := time.Now()
	rows, err := experiments.STATable(ctx, class, *scale, *midK, *workers)
	elapsed := time.Since(start)
	// Flush the observability outputs first, but let the pipeline's own
	// failure decide the exit code; a flush failure alone exits 1.
	ferr := finish()
	if ferr != nil {
		fail("%v", ferr)
	}
	if err != nil {
		fail("%v", err)
		return exitErr
	}
	table := "Table 3"
	if class == bench.PDC {
		table = "Table 5"
	}
	fmt.Fprintf(stdout, "%s: %s static timing analysis results\n\n", table, class)
	fmt.Fprintf(stdout, "%-9s %-34s %-22s %-18s\n", "K", "Critical Path Arrival Time", "Same path as K=0", "Chip Area / rows")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-9s %s(in) %s(out)  %6.2f ns   %14.2f ns   %10.0f µm² / %d\n",
			r.Label, r.CriticalPI, r.CriticalPO, r.Arrival, r.SameK0PathArrival, r.ChipArea, r.NumRows)
	}
	fmt.Fprintf(stdout, "\ntable wall-clock: %.2fs (workers=%d, %d CPUs)\n",
		elapsed.Seconds(), *workers, runtime.GOMAXPROCS(0))
	if ferr != nil {
		return exitErr
	}
	return exitOK
}

// Command timing reproduces the paper's Table 3 (SPLA) and Table 5
// (PDC): static timing analysis of the K=0 mapping, a routable mid-K
// mapping, and the SIS baseline, each routed in the smallest die that
// accepts it.
//
// Usage:
//
//	timing -bench spla           # full-size Table 3 (a few minutes)
//	timing -bench pdc -midk 0.001
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"casyn/internal/bench"
	"casyn/internal/cliobs"
	"casyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("timing: ")
	var (
		benchName = flag.String("bench", "spla", "benchmark class: spla or pdc")
		scale     = flag.Float64("scale", 1.0, "benchmark scale factor")
		midK      = flag.Float64("midk", 0.001, "mid-ladder K for the congestion-aware row")
		workers   = flag.Int("workers", 0, "covering/routing goroutines (0 = all CPUs, 1 = serial)")
	)
	ob := cliobs.Register(nil)
	flag.Parse()

	var class bench.Class
	switch *benchName {
	case "spla":
		class = bench.SPLA
	case "pdc":
		class = bench.PDC
	default:
		log.Fatalf("unknown benchmark %q (want spla or pdc)", *benchName)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, oerr := ob.Start(ctx)
	if oerr != nil {
		log.Fatal(oerr)
	}
	start := time.Now()
	rows, err := experiments.STATable(ctx, class, *scale, *midK, *workers)
	elapsed := time.Since(start)
	if ferr := finish(); ferr != nil {
		log.Print(ferr)
	}
	if err != nil {
		log.Fatal(err)
	}
	table := "Table 3"
	if class == bench.PDC {
		table = "Table 5"
	}
	fmt.Printf("%s: %s static timing analysis results\n\n", table, class)
	fmt.Printf("%-9s %-34s %-22s %-18s\n", "K", "Critical Path Arrival Time", "Same path as K=0", "Chip Area / rows")
	for _, r := range rows {
		fmt.Printf("%-9s %s(in) %s(out)  %6.2f ns   %14.2f ns   %10.0f µm² / %d\n",
			r.Label, r.CriticalPI, r.CriticalPO, r.Arrival, r.SameK0PathArrival, r.ChipArea, r.NumRows)
	}
	fmt.Printf("\ntable wall-clock: %.2fs (workers=%d, %d CPUs)\n",
		elapsed.Seconds(), *workers, runtime.GOMAXPROCS(0))
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"casyn/internal/obs"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSweepWithMetrics runs a scaled-down sweep with -metrics and
// checks the table lands on stdout and the flushed JSONL carries the
// shared mapping prefix's span alongside the per-K iterations.
func TestSweepWithMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	code, out, errb := runCLI(t, "-bench", "spla", "-scale", "0.05", "-metrics", path)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stderr %q)", code, exitOK, errb)
	}
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "sweep wall-clock") {
		t.Errorf("table missing from stdout: %q", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("metrics file is not valid JSONL: %v", err)
	}
	counts := snap.SpanCounts()
	if counts["stage.map_prepare"] != 1 || counts["map.prepare"] != 1 {
		t.Errorf("shared mapping prefix not prepared exactly once: %v", counts)
	}
	// All 14 ladder rungs map through the shared prefix. The scaled run
	// also sizes its die with one classic single-K iteration
	// (minAreaCellArea), which accounts for exactly one map.cover and
	// the second map.partition (the first is nested in map.prepare).
	if counts["map.cover_only"] != 14 || counts["map.cover"] != 1 || counts["map.partition"] != 2 {
		t.Errorf("per-K repartitioning survived the shared prefix: %v", counts)
	}
	if counts["flow.iteration"] != 15 {
		t.Errorf("flow.iteration = %d, want 14 ladder rungs + 1 die-sizing run", counts["flow.iteration"])
	}
}

// TestFlushFailureKeepsPipelineExitCode is the cliobs satellite's
// regression: an unwritable -metrics path must be reported on stderr,
// the sweep's own report must still print, and — since the pipeline
// itself succeeded — the flush failure alone decides the nonzero exit.
func TestFlushFailureKeepsPipelineExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "metrics.jsonl")
	code, out, errb := runCLI(t, "-bench", "spla", "-scale", "0.05", "-metrics", bad)
	if code != exitErr {
		t.Fatalf("exit = %d, want %d (stderr %q)", code, exitErr, errb)
	}
	if !strings.Contains(errb, "no-such-dir") {
		t.Errorf("flush error not reported on stderr: %q", errb)
	}
	if !strings.Contains(out, "Table 2") {
		t.Errorf("flush failure clobbered the sweep report: %q", out)
	}
}

// TestUsageErrors pins the usage exit paths.
func TestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad bench": {"-bench", "nonesuch"},
		"bad flag":  {"-definitely-not-a-flag"},
	} {
		t.Run(name, func(t *testing.T) {
			if code, _, _ := runCLI(t, args...); code != exitUsage {
				t.Errorf("exit = %d, want %d", code, exitUsage)
			}
		})
	}
}

// Command ksweep reproduces the paper's Table 2 (SPLA) and Table 4
// (PDC): the congestion-minimization factor K swept over the paper's
// ladder against a fixed die, reporting cell area, cell count, area
// utilization, and routing violations per K.
//
// Usage:
//
//	ksweep -bench spla          # full-size Table 2 (≈1 min)
//	ksweep -bench pdc           # full-size Table 4
//	ksweep -bench spla -scale 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"casyn/internal/bench"
	"casyn/internal/cliobs"
	"casyn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ksweep: ")
	var (
		benchName = flag.String("bench", "spla", "benchmark class: spla or pdc")
		scale     = flag.Float64("scale", 1.0, "benchmark scale factor")
		workers   = flag.Int("workers", 0, "K-sweep goroutines (0 = all CPUs, 1 = serial)")
	)
	ob := cliobs.Register(nil)
	flag.Parse()

	var class bench.Class
	switch *benchName {
	case "spla":
		class = bench.SPLA
	case "pdc":
		class = bench.PDC
	default:
		log.Fatalf("unknown benchmark %q (want spla or pdc)", *benchName)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, oerr := ob.Start(ctx)
	if oerr != nil {
		log.Fatal(oerr)
	}
	start := time.Now()
	res, err := experiments.KSweep(ctx, class, *scale, *workers)
	elapsed := time.Since(start)
	if ferr := finish(); ferr != nil {
		log.Print(ferr)
	}
	if err != nil {
		log.Fatal(err)
	}
	table := "Table 2"
	if class == bench.PDC {
		table = "Table 4"
	}
	fmt.Printf("%s: %s congestion minimization vs place&route results\n", table, class)
	fmt.Printf("die %.0f µm², %d rows, 3 metal layers\n\n", res.Layout.Area(), res.Layout.NumRows)
	fmt.Printf("%-9s %-12s %-9s %-14s %-10s\n", "K", "Cell Area", "No. of", "Area", "Routing")
	fmt.Printf("%-9s %-12s %-9s %-14s %-10s\n", "", "(µm²)", "Cells", "Utilization%", "violations")
	for _, r := range res.Rows {
		if r.Failed {
			fmt.Printf("%-9g FAILED: %v\n", r.K, r.Err)
			continue
		}
		fmt.Printf("%-9g %-12.0f %-9d %-14.2f %-10d\n",
			r.K, r.CellArea, r.NumCells, r.Utilization*100, r.Violations)
	}
	fmt.Printf("\nsweep wall-clock: %.2fs (workers=%d, %d CPUs)\n",
		elapsed.Seconds(), *workers, runtime.GOMAXPROCS(0))
}

// Command ksweep reproduces the paper's Table 2 (SPLA) and Table 4
// (PDC): the congestion-minimization factor K swept over the paper's
// ladder against a fixed die, reporting cell area, cell count, area
// utilization, and routing violations per K.
//
// Usage:
//
//	ksweep -bench spla          # full-size Table 2 (≈1 min)
//	ksweep -bench pdc           # full-size Table 4
//	ksweep -bench spla -scale 0.1
//
// Exit codes: 0 success, 1 error (including a failed -metrics/-trace
// flush after an otherwise clean sweep), 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"casyn/internal/bench"
	"casyn/internal/cliobs"
	"casyn/internal/experiments"
)

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) { fmt.Fprintf(stderr, "ksweep: "+format+"\n", a...) }
	fs := flag.NewFlagSet("ksweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "spla", "benchmark class: spla or pdc")
		scale     = fs.Float64("scale", 1.0, "benchmark scale factor")
		workers   = fs.Int("workers", 0, "K-sweep goroutines (0 = all CPUs, 1 = serial)")
	)
	ob := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	var class bench.Class
	switch *benchName {
	case "spla":
		class = bench.SPLA
	case "pdc":
		class = bench.PDC
	default:
		fail("unknown benchmark %q (want spla or pdc)", *benchName)
		return exitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, oerr := ob.Start(ctx)
	if oerr != nil {
		fail("%v", oerr)
		return exitErr
	}
	start := time.Now()
	res, err := experiments.KSweep(ctx, class, *scale, *workers)
	elapsed := time.Since(start)
	// Flush the observability outputs first — the trace of a failed
	// sweep is often the most useful one — but let the sweep's own
	// failure decide the exit code; a flush failure alone exits 1.
	ferr := finish()
	if ferr != nil {
		fail("%v", ferr)
	}
	if err != nil {
		fail("%v", err)
		return exitErr
	}
	table := "Table 2"
	if class == bench.PDC {
		table = "Table 4"
	}
	fmt.Fprintf(stdout, "%s: %s congestion minimization vs place&route results\n", table, class)
	fmt.Fprintf(stdout, "die %.0f µm², %d rows, 3 metal layers\n\n", res.Layout.Area(), res.Layout.NumRows)
	fmt.Fprintf(stdout, "%-9s %-12s %-9s %-14s %-10s\n", "K", "Cell Area", "No. of", "Area", "Routing")
	fmt.Fprintf(stdout, "%-9s %-12s %-9s %-14s %-10s\n", "", "(µm²)", "Cells", "Utilization%", "violations")
	for _, r := range res.Rows {
		if r.Failed {
			fmt.Fprintf(stdout, "%-9g FAILED: %v\n", r.K, r.Err)
			continue
		}
		fmt.Fprintf(stdout, "%-9g %-12.0f %-9d %-14.2f %-10d\n",
			r.K, r.CellArea, r.NumCells, r.Utilization*100, r.Violations)
	}
	fmt.Fprintf(stdout, "\nsweep wall-clock: %.2fs (workers=%d, %d CPUs)\n",
		elapsed.Seconds(), *workers, runtime.GOMAXPROCS(0))
	if ferr != nil {
		return exitErr
	}
	return exitOK
}

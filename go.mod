module casyn

go 1.22
